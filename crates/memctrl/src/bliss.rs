//! BLISS blacklist state machine (ISSUE 7).
//!
//! The Blacklisting memory scheduler (Subramanian et al., PAPERS.md)
//! observes that most of the fairness of application-aware scheduling
//! comes from a single coarse distinction: is a thread currently hogging
//! the bank schedulers? Its mechanism is deliberately tiny:
//!
//! * a single **streak counter** tracks how many *consecutive* bank
//!   services the same thread has received; serving any other thread
//!   resets it,
//! * when the streak crosses a **threshold**, the streaking thread is
//!   **blacklisted**,
//! * every **clearing interval** all blacklist flags (and the streak)
//!   are wiped, giving former hogs a fresh chance.
//!
//! Scheduling then prefers non-blacklisted requests (the tier bit in
//! [`crate::policy::Priority`]), keeping FR-FCFS order among peers.
//!
//! [`BlissState`] is a plain deterministic state machine so the property
//! suite (`blacklist_properties.rs`) can drive it against a naive
//! recompute-from-scratch oracle, and it snapshots into the controller's
//! checkpoint sections.

use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Per-controller BLISS blacklist state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlissState {
    threshold: u32,
    clear_interval: u64,
    /// The thread owning the current consecutive-service streak, if any.
    streak_thread: Option<u32>,
    /// Length of that streak (number of consecutive services).
    streak: u32,
    blacklisted: Vec<bool>,
    /// Cycle at which the next clearing fires.
    next_clear: u64,
}

impl BlissState {
    /// Fresh state for `num_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` or `clear_interval` is zero (rejected by
    /// `McConfig::validate` before a controller is built).
    pub fn new(num_threads: usize, threshold: u32, clear_interval: u64) -> Self {
        assert!(threshold > 0, "bliss_threshold must be positive");
        assert!(clear_interval > 0, "bliss_clear_interval must be positive");
        BlissState {
            threshold,
            clear_interval,
            streak_thread: None,
            streak: 0,
            blacklisted: vec![false; num_threads],
            next_clear: clear_interval,
        }
    }

    /// Whether `thread` is currently blacklisted.
    pub fn is_blacklisted(&self, thread: u32) -> bool {
        self.blacklisted[thread as usize]
    }

    /// The blacklist flags, indexed by thread id.
    pub fn blacklist(&self) -> &[bool] {
        &self.blacklisted
    }

    /// The thread holding the current consecutive-service streak.
    pub fn streak_thread(&self) -> Option<u32> {
        self.streak_thread
    }

    /// Length of the current streak.
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// Cycle at which the next clearing fires (for the controller's
    /// next-event computation).
    pub fn next_clear(&self) -> u64 {
        self.next_clear
    }

    /// Records one bank service for `thread`. Returns `true` when the
    /// blacklist changed (i.e. `thread` just got blacklisted), which the
    /// controller must treat as a scheduling-state invalidation.
    pub fn record_service(&mut self, thread: u32) -> bool {
        if self.streak_thread == Some(thread) {
            self.streak = self.streak.saturating_add(1);
        } else {
            self.streak_thread = Some(thread);
            self.streak = 1;
        }
        if self.streak >= self.threshold && !self.blacklisted[thread as usize] {
            self.blacklisted[thread as usize] = true;
            return true;
        }
        false
    }

    /// Advances the clearing clock to `now`, wiping the blacklist at each
    /// elapsed interval boundary. Returns `true` when any flag was
    /// cleared (scheduling-state invalidation). Idempotent for a fixed
    /// `now`.
    pub fn maybe_clear(&mut self, now: u64) -> bool {
        if now < self.next_clear {
            return false;
        }
        // Jump directly past every elapsed boundary (fast-forward may
        // skip many intervals at once; stepping one interval at a time
        // would not terminate for adversarial clocks near `u64::MAX`).
        self.next_clear = (now / self.clear_interval)
            .checked_add(1)
            .and_then(|n| n.checked_mul(self.clear_interval))
            .unwrap_or(u64::MAX);
        let had_any = self.blacklisted.iter().any(|&b| b) || self.streak_thread.is_some();
        self.blacklisted.fill(false);
        self.streak_thread = None;
        self.streak = 0;
        had_any
    }
}

impl Snapshot for BlissState {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u32(self.threshold);
        w.put_u64(self.clear_interval);
        match self.streak_thread {
            Some(t) => {
                w.put_bool(true);
                w.put_u32(t);
            }
            None => w.put_bool(false),
        }
        w.put_u32(self.streak);
        w.put_seq_len(self.blacklisted.len());
        for &b in &self.blacklisted {
            w.put_bool(b);
        }
        w.put_u64(self.next_clear);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let threshold = r.get_u32()?;
        let clear_interval = r.get_u64()?;
        if threshold != self.threshold || clear_interval != self.clear_interval {
            return Err(r.malformed(format!(
                "bliss knobs {threshold}/{clear_interval} disagree with config {}/{}",
                self.threshold, self.clear_interval
            )));
        }
        self.streak_thread = if r.get_bool()? {
            Some(r.get_u32()?)
        } else {
            None
        };
        self.streak = r.get_u32()?;
        let n = r.seq_len()?;
        if n != self.blacklisted.len() {
            return Err(r.malformed(format!(
                "blacklist for {n} threads, controller has {}",
                self.blacklisted.len()
            )));
        }
        for b in &mut self.blacklisted {
            *b = r.get_bool()?;
        }
        self.next_clear = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streak_crosses_threshold() {
        let mut s = BlissState::new(2, 3, 1000);
        assert!(!s.record_service(0));
        assert!(!s.record_service(0));
        assert!(s.record_service(0)); // third consecutive → blacklisted
        assert!(s.is_blacklisted(0));
        assert!(!s.is_blacklisted(1));
        // Further services of a blacklisted thread report no change.
        assert!(!s.record_service(0));
    }

    #[test]
    fn interleaving_resets_the_streak() {
        let mut s = BlissState::new(2, 3, 1000);
        s.record_service(0);
        s.record_service(0);
        s.record_service(1); // streak broken
        assert_eq!(s.streak_thread(), Some(1));
        assert_eq!(s.streak(), 1);
        assert!(!s.record_service(0));
        assert!(!s.record_service(0));
        assert!(s.record_service(0));
    }

    #[test]
    fn clearing_interval_wipes_flags() {
        let mut s = BlissState::new(2, 1, 100);
        assert!(s.record_service(1));
        assert!(s.is_blacklisted(1));
        assert!(!s.maybe_clear(99));
        assert!(s.maybe_clear(100));
        assert!(!s.is_blacklisted(1));
        assert_eq!(s.streak(), 0);
        assert_eq!(s.next_clear(), 200);
        // Idempotent at the same cycle; multi-interval jumps land past now.
        assert!(!s.maybe_clear(100));
        s.record_service(0);
        assert!(s.maybe_clear(750));
        assert_eq!(s.next_clear(), 800);
    }

    #[test]
    fn snapshot_round_trip() {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let mut a = BlissState::new(3, 2, 500);
        a.record_service(2);
        a.record_service(2);
        a.record_service(1);
        let mut w = SnapshotWriter::new(7);
        w.section("bliss", |s| a.save(s));
        let bytes = w.into_bytes();

        let restore_into = |target: &mut BlissState| {
            let mut r = SnapshotReader::new(&bytes, 7).unwrap();
            r.section("bliss", |s| target.restore(s))
        };
        let mut b = BlissState::new(3, 2, 500);
        restore_into(&mut b).unwrap();
        assert_eq!(a, b);
        // Wrong shape or knobs is a typed error, not a panic.
        let mut narrow = BlissState::new(2, 2, 500);
        assert!(restore_into(&mut narrow).is_err());
        let mut knobs = BlissState::new(3, 4, 500);
        assert!(restore_into(&mut knobs).is_err());
    }
}
