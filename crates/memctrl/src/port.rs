//! The request-submission interface a processor core drives.
//!
//! Both the single-channel [`MemoryController`] and the multi-channel
//! composition [`MultiChannelController`] accept requests the same way; a
//! core is generic over [`MemoryPort`] so either can sit behind it.

use crate::buffers::Nack;
use crate::controller::MemoryController;
use crate::multichannel::MultiChannelController;
use crate::request::{RequestId, RequestKind, ThreadId};
use fqms_sim::clock::DramCycle;

/// A sink for memory requests with per-thread back-pressure.
pub trait MemoryPort {
    /// Submits the request for the cache line containing `phys`.
    ///
    /// # Errors
    ///
    /// Returns the typed [`Nack`] back-pressure taxonomy; each variant
    /// asks the requester for a different reaction.
    ///
    /// [`Nack::TransactionBufferFull`] / [`Nack::WriteBufferFull`] — the
    /// thread's buffer partition (on the routing channel) is full.
    /// Transient: retry once an in-flight request completes.
    ///
    /// ```
    /// use fqms_memctrl::prelude::*;
    /// use fqms_dram::prelude::*;
    /// use fqms_sim::clock::DramCycle;
    ///
    /// let cfg = McConfig::paper(1, SchedulerKind::FrFcfs);
    /// let mut mc = MemoryController::new(
    ///     cfg, Geometry::paper(), TimingParams::ddr2_800(),
    /// ).unwrap();
    /// for i in 0..16 {
    ///     // Fill the paper's 16-entry transaction partition.
    ///     mc.submit(ThreadId::new(0), RequestKind::Read, 0x40 * i, DramCycle::new(0))
    ///         .unwrap();
    /// }
    /// assert_eq!(
    ///     mc.submit(ThreadId::new(0), RequestKind::Read, 0x8000, DramCycle::new(0)),
    ///     Err(Nack::TransactionBufferFull),
    /// );
    /// ```
    ///
    /// [`Nack::Throttled`] — the overload controller classified the
    /// thread as a bandwidth hog and its admission tokens for the period
    /// are exhausted. Retry no earlier than the carried `retry_after`
    /// cycles; retrying sooner is provably futile.
    ///
    /// ```
    /// use fqms_memctrl::prelude::*;
    /// use fqms_dram::prelude::*;
    /// use fqms_sim::clock::DramCycle;
    ///
    /// // Margin 1.0 classifies every unprotected thread a hog at the
    /// // first replenish boundary; zero tokens gate them outright.
    /// let cfg = McConfig::paper(2, SchedulerKind::FqVftf)
    ///     .with_overload(OverloadConfig::new(2).throttled(100, 0, 1.0));
    /// let mut mc = MemoryController::new(
    ///     cfg, Geometry::paper(), TimingParams::ddr2_800(),
    /// ).unwrap();
    /// for c in 1..=100u64 {
    ///     mc.step(DramCycle::new(c)); // cross the boundary at cycle 100
    /// }
    /// match mc.submit(ThreadId::new(0), RequestKind::Read, 0x1000, DramCycle::new(101)) {
    ///     Err(Nack::Throttled { retry_after }) => {
    ///         assert_eq!(retry_after, 99); // tokens return at cycle 200
    ///     }
    ///     other => panic!("expected a throttle NACK, got {other:?}"),
    /// }
    /// ```
    ///
    /// [`Nack::Shed`] — the controller is saturated and deliberately
    /// dropped the request to protect premium traffic. Terminal: never
    /// retry; the carried [`crate::buffers::ShedClass`] names the class
    /// sacrificed.
    ///
    /// ```
    /// use fqms_memctrl::prelude::*;
    /// use fqms_dram::prelude::*;
    /// use fqms_sim::clock::DramCycle;
    ///
    /// // One occupied entry trips the detector at the 2-cycle window
    /// // boundary; thread 0 is protected, thread 1 is best-effort.
    /// let cfg = McConfig::paper(2, SchedulerKind::FqVftf)
    ///     .with_overload(OverloadConfig::new(2).shedding(2, 1, 0, 10, 1).protect(0));
    /// let mut mc = MemoryController::new(
    ///     cfg, Geometry::paper(), TimingParams::ddr2_800(),
    /// ).unwrap();
    /// mc.submit(ThreadId::new(1), RequestKind::Read, 0x1000, DramCycle::new(0)).unwrap();
    /// mc.step(DramCycle::new(1));
    /// mc.step(DramCycle::new(2)); // detector escalates to Degraded here
    /// assert_eq!(
    ///     mc.submit(ThreadId::new(1), RequestKind::Write, 0x2000, DramCycle::new(3)),
    ///     Err(Nack::Shed { class: ShedClass::BestEffortWrite }),
    /// );
    /// // Degraded sheds only best-effort *writes*; reads still pass, and
    /// // the protected thread is untouched at every level.
    /// assert!(mc.submit(ThreadId::new(1), RequestKind::Read, 0x3000, DramCycle::new(3)).is_ok());
    /// assert!(mc.submit(ThreadId::new(0), RequestKind::Write, 0x4000, DramCycle::new(3)).is_ok());
    /// ```
    fn submit(
        &mut self,
        thread: ThreadId,
        kind: RequestKind,
        phys: u64,
        now: DramCycle,
    ) -> Result<RequestId, Nack>;
}

impl MemoryPort for MemoryController {
    fn submit(
        &mut self,
        thread: ThreadId,
        kind: RequestKind,
        phys: u64,
        now: DramCycle,
    ) -> Result<RequestId, Nack> {
        self.try_submit(thread, kind, phys, now)
    }
}

impl MemoryPort for MultiChannelController {
    fn submit(
        &mut self,
        thread: ThreadId,
        kind: RequestKind,
        phys: u64,
        now: DramCycle,
    ) -> Result<RequestId, Nack> {
        self.try_submit(thread, kind, phys, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::McConfig;
    use crate::policy::SchedulerKind;
    use fqms_dram::device::Geometry;
    use fqms_dram::timing::TimingParams;

    fn exercise<P: MemoryPort>(port: &mut P) {
        port.submit(
            ThreadId::new(0),
            RequestKind::Read,
            0x1000,
            DramCycle::new(0),
        )
        .unwrap();
    }

    #[test]
    fn both_controllers_implement_the_port() {
        let cfg = McConfig::paper(1, SchedulerKind::FrFcfs);
        let mut single =
            MemoryController::new(cfg.clone(), Geometry::paper(), TimingParams::ddr2_800())
                .unwrap();
        exercise(&mut single);
        let mut multi =
            MultiChannelController::new(2, cfg, Geometry::paper(), TimingParams::ddr2_800())
                .unwrap();
        exercise(&mut multi);
        assert_eq!(single.pending_requests(), 1);
        assert_eq!(multi.pending_requests(), 1);
    }
}
