//! The request-submission interface a processor core drives.
//!
//! Both the single-channel [`MemoryController`] and the multi-channel
//! composition [`MultiChannelController`] accept requests the same way; a
//! core is generic over [`MemoryPort`] so either can sit behind it.

use crate::buffers::Nack;
use crate::controller::MemoryController;
use crate::multichannel::MultiChannelController;
use crate::request::{RequestId, RequestKind, ThreadId};
use fqms_sim::clock::DramCycle;

/// A sink for memory requests with per-thread back-pressure.
pub trait MemoryPort {
    /// Submits the request for the cache line containing `phys`.
    ///
    /// # Errors
    ///
    /// Returns [`Nack`] when the thread's buffer partition (on the
    /// routing channel) is full; the requester must retry later.
    fn submit(
        &mut self,
        thread: ThreadId,
        kind: RequestKind,
        phys: u64,
        now: DramCycle,
    ) -> Result<RequestId, Nack>;
}

impl MemoryPort for MemoryController {
    fn submit(
        &mut self,
        thread: ThreadId,
        kind: RequestKind,
        phys: u64,
        now: DramCycle,
    ) -> Result<RequestId, Nack> {
        self.try_submit(thread, kind, phys, now)
    }
}

impl MemoryPort for MultiChannelController {
    fn submit(
        &mut self,
        thread: ThreadId,
        kind: RequestKind,
        phys: u64,
        now: DramCycle,
    ) -> Result<RequestId, Nack> {
        self.try_submit(thread, kind, phys, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::McConfig;
    use crate::policy::SchedulerKind;
    use fqms_dram::device::Geometry;
    use fqms_dram::timing::TimingParams;

    fn exercise<P: MemoryPort>(port: &mut P) {
        port.submit(
            ThreadId::new(0),
            RequestKind::Read,
            0x1000,
            DramCycle::new(0),
        )
        .unwrap();
    }

    #[test]
    fn both_controllers_implement_the_port() {
        let cfg = McConfig::paper(1, SchedulerKind::FrFcfs);
        let mut single =
            MemoryController::new(cfg.clone(), Geometry::paper(), TimingParams::ddr2_800())
                .unwrap();
        exercise(&mut single);
        let mut multi =
            MultiChannelController::new(2, cfg, Geometry::paper(), TimingParams::ddr2_800())
                .unwrap();
        exercise(&mut multi);
        assert_eq!(single.pending_requests(), 1);
        assert_eq!(multi.pending_requests(), 1);
    }
}
