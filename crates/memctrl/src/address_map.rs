//! Physical-address to DRAM-location mapping.
//!
//! The paper's memory controller "maps physical addresses to ranks and
//! banks using an XOR address mapping" (Lin et al., HPCA '01): the bank
//! index is XORed with the low-order row bits, which spreads
//! row-conflicting streams across banks and removes pathological bank
//! camping for strided access patterns.
//!
//! Bit layout (from least significant): line offset | column | bank | rank
//! | row, with `bank ^= row & (banks-1)` applied on top.

use crate::request::ThreadId;
use fqms_dram::command::{BankId, ColId, DramAddress, RankId, RowId};
use fqms_dram::device::Geometry;

/// Maps physical byte addresses to `(rank, bank, row, col)` and back.
///
/// # Example
///
/// ```
/// use fqms_memctrl::address_map::AddressMap;
/// use fqms_dram::device::Geometry;
///
/// let map = AddressMap::new(Geometry::paper(), 64);
/// let a = map.decode(0x12345680);
/// let phys = map.encode(a);
/// assert_eq!(map.decode(phys), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    geometry: Geometry,
    line_bytes: u64,
}

impl AddressMap {
    /// Creates a mapper for the given geometry and cache-line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid or `line_bytes` is not a power of
    /// two.
    pub fn new(geometry: Geometry, line_bytes: u64) -> Self {
        geometry.validate().expect("invalid geometry");
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        AddressMap {
            geometry,
            line_bytes,
        }
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// The device geometry this mapper was built for.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Decodes a physical byte address into a DRAM location. Addresses in
    /// the same cache line map to the same location; addresses beyond the
    /// device capacity wrap (row bits are taken modulo the row count).
    pub fn decode(&self, phys: u64) -> DramAddress {
        let g = &self.geometry;
        let line = phys / self.line_bytes;
        let col = (line % g.cols as u64) as u32;
        let rest = line / g.cols as u64;
        let bank_raw = (rest % g.banks as u64) as u32;
        let rest = rest / g.banks as u64;
        let rank = (rest % g.ranks as u64) as u32;
        let row = ((rest / g.ranks as u64) % g.rows as u64) as u32;
        // XOR mapping: fold the low row bits into the bank index.
        let bank = bank_raw ^ (row & (g.banks - 1));
        DramAddress {
            rank: RankId::new(rank),
            bank: BankId::new(bank),
            row: RowId::new(row),
            col: ColId::new(col),
        }
    }

    /// Re-encodes a DRAM location into the canonical (line-aligned)
    /// physical address that decodes to it. Inverse of [`AddressMap::decode`]
    /// for in-range locations.
    pub fn encode(&self, addr: DramAddress) -> u64 {
        let g = &self.geometry;
        let row = addr.row.as_u32();
        // Undo the XOR fold.
        let bank_raw = addr.bank.as_u32() ^ (row & (g.banks - 1));
        let mut line = row as u64;
        line = line * g.ranks as u64 + addr.rank.as_u32() as u64;
        line = line * g.banks as u64 + bank_raw as u64;
        line = line * g.cols as u64 + addr.col.as_u32() as u64;
        line * self.line_bytes
    }

    /// Offsets a physical address into a per-thread private region so that
    /// co-scheduled threads never alias the same rows (the paper's cores
    /// have private memory images; only bandwidth is shared).
    ///
    /// The offset strides threads by a quarter of the row space, rotating
    /// the row index; bank/col structure of the stream is preserved.
    pub fn thread_private(&self, thread: ThreadId, phys: u64) -> u64 {
        let g = &self.geometry;
        let rows_per_thread = (g.rows as u64 / 4).max(1);
        let row_stride =
            rows_per_thread * g.ranks as u64 * g.banks as u64 * g.cols as u64 * self.line_bytes;
        phys.wrapping_add(thread.as_u32() as u64 * row_stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(Geometry::paper(), 64)
    }

    #[test]
    fn same_line_same_location() {
        let m = map();
        assert_eq!(m.decode(0x1000), m.decode(0x1004));
        assert_eq!(m.decode(0x1000), m.decode(0x103F));
        assert_ne!(m.decode(0x1000), m.decode(0x1040));
    }

    #[test]
    fn sequential_lines_walk_columns_first() {
        let m = map();
        let a = m.decode(0);
        let b = m.decode(64);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.col.as_u32(), a.col.as_u32() + 1);
    }

    #[test]
    fn row_crossing_changes_bank_via_xor() {
        let m = map();
        let g = Geometry::paper();
        // Two addresses with identical raw bank bits but adjacent rows must
        // land in different banks thanks to the XOR fold.
        let line_a = 0u64; // row 0, bank_raw 0
        let row_size = g.cols as u64 * g.banks as u64 * g.ranks as u64 * 64;
        let line_b = row_size; // row 1, bank_raw 0
        let a = m.decode(line_a);
        let b = m.decode(line_b);
        assert_eq!(a.bank.as_u32(), 0);
        assert_eq!(b.bank.as_u32(), 1);
    }

    #[test]
    fn encode_is_right_inverse_of_decode() {
        let m = map();
        for i in 0..10_000u64 {
            let phys = i * 64;
            let addr = m.decode(phys);
            assert_eq!(m.encode(addr), phys, "at line {i}");
        }
    }

    #[test]
    fn decode_is_injective_over_device() {
        use std::collections::HashSet;
        let m = AddressMap::new(
            Geometry {
                ranks: 2,
                banks: 4,
                rows: 16,
                cols: 8,
            },
            64,
        );
        let total_lines = 2 * 4 * 16 * 8;
        let mut seen = HashSet::new();
        for i in 0..total_lines {
            let addr = m.decode(i * 64);
            assert!(seen.insert(addr), "collision at line {i}: {addr}");
        }
    }

    #[test]
    fn thread_private_regions_use_distinct_rows() {
        let m = map();
        let a = m.decode(m.thread_private(ThreadId::new(0), 0));
        let b = m.decode(m.thread_private(ThreadId::new(1), 0));
        assert_ne!(a.row, b.row);
    }

    #[test]
    #[should_panic]
    fn tiny_line_size_panics() {
        let _ = AddressMap::new(Geometry::paper(), 4);
    }
}
