//! Per-bank bandwidth regulation for the real-time controller mode
//! (ISSUE 9).
//!
//! The regulation papers in PAPERS.md (Dynamic Priority Queue, Per-Bank
//! Bandwidth Regulation) make hard latency bounds *computable* with two
//! mechanisms the fair-queuing substrate composes with directly:
//!
//! * **bank partitioning** — each thread's requests are remapped into a
//!   private contiguous slice of the global bank space
//!   ([`fqms_dram::device::Geometry::partition_slice`]), so cross-thread
//!   row conflicts vanish and only the shared channel remains contended,
//! * **token-bucket budgets** — each real-time thread may consume at most
//!   `budget` bank services (CAS issues) per replenish `period`; while in
//!   budget its requests occupy the premium scheduling tier (tier 0 in
//!   [`crate::policy::Priority`]), and on exhaustion they demote to the
//!   best-effort tier until the next period boundary.
//!
//! [`RegulatorState`] is the deterministic per-controller state machine
//! behind those budgets, deliberately shaped like
//! [`crate::bliss::BlissState`]: knobs fixed at construction, lazy
//! boundary advance compatible with the event-driven fast path
//! (`next_replenish` feeds `next_event_cycle`), and a presence-gated
//! snapshot section validated against the configured knobs on restore.
//! The analytic latency bound the mode exists to honour is computed in
//! [`crate::wcet`]; observed violations are counted here so the release
//! gate (`rt_wcet.rs`) and the `latency_cdf` figure bin can assert zero.

use crate::config::RegulationConfig;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Per-controller token-bucket regulator state for every thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegulatorState {
    /// Replenish period in DRAM cycles (knob).
    period: u64,
    /// Per-thread service budget per period; 0 for best-effort threads
    /// (knob).
    budgets: Vec<u64>,
    /// Which threads are real-time (knob).
    rt: Vec<bool>,
    /// Per-thread analytic WCET bound in DRAM cycles; 0 = unset (knob).
    wcet: Vec<u64>,
    /// Services consumed since the last replenish boundary.
    used: Vec<u64>,
    /// Cycle at which the next replenish fires.
    next_replenish: u64,
    /// Completions observed above their thread's WCET bound (must stay 0
    /// for the bound to be verified).
    violations: u64,
}

impl RegulatorState {
    /// Builds the regulator from a validated [`RegulationConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (rejected by `McConfig::validate`
    /// before a controller is built).
    pub fn new(config: &RegulationConfig) -> Self {
        assert!(config.period > 0, "regulation period must be positive");
        let n = config.classes.len();
        RegulatorState {
            period: config.period,
            budgets: config.classes.iter().map(|c| c.budget).collect(),
            rt: config.classes.iter().map(|c| c.rt).collect(),
            wcet: config.classes.iter().map(|c| c.wcet.unwrap_or(0)).collect(),
            used: vec![0; n],
            next_replenish: config.period,
            violations: 0,
        }
    }

    /// Replenish period in DRAM cycles.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Whether `thread` currently holds premium-tier (in-budget
    /// real-time) status. Best-effort threads and zero-budget real-time
    /// threads are never in budget.
    pub fn in_budget(&self, thread: u32) -> bool {
        let t = thread as usize;
        self.rt[t] && self.used[t] < self.budgets[t]
    }

    /// Tokens left for `thread` in the current period.
    pub fn remaining(&self, thread: u32) -> u64 {
        let t = thread as usize;
        self.budgets[t].saturating_sub(self.used[t])
    }

    /// The configured WCET bound for `thread`, if one was set.
    pub fn wcet_bound(&self, thread: u32) -> Option<u64> {
        match self.wcet[thread as usize] {
            0 => None,
            b => Some(b),
        }
    }

    /// Cycle at which the next replenish boundary fires (for the
    /// controller's next-event computation: fast-forward must not skip
    /// past a boundary, or a demoted thread would regain its tier late).
    pub fn next_replenish(&self) -> u64 {
        self.next_replenish
    }

    /// Completions observed above their thread's WCET bound.
    pub fn bound_violations(&self) -> u64 {
        self.violations
    }

    /// Counts one completion whose latency exceeded the thread's bound.
    pub fn note_violation(&mut self) {
        self.violations = self.violations.saturating_add(1);
    }

    /// Records one bank service (CAS issue) for `thread`. Returns `true`
    /// when the thread just crossed from in-budget to exhausted — a
    /// scheduling-tier change the controller must treat as a
    /// scheduling-state invalidation. Best-effort threads consume
    /// nothing and never change tier.
    pub fn consume(&mut self, thread: u32) -> bool {
        let t = thread as usize;
        if !self.rt[t] {
            return false;
        }
        let was = self.used[t] < self.budgets[t];
        self.used[t] = self.used[t].saturating_add(1);
        was && self.used[t] >= self.budgets[t]
    }

    /// Advances the replenish clock to `now`, refilling every bucket at
    /// each elapsed period boundary. Returns `true` when any consumed
    /// token was restored (scheduling-state invalidation: a demoted
    /// thread may have regained its tier). Idempotent for a fixed `now`.
    pub fn maybe_replenish(&mut self, now: u64) -> bool {
        if now < self.next_replenish {
            return false;
        }
        // Jump directly past every elapsed boundary (fast-forward may
        // skip many periods at once; stepping one period at a time would
        // not terminate for adversarial clocks near `u64::MAX`).
        self.next_replenish = (now / self.period)
            .checked_add(1)
            .and_then(|n| n.checked_mul(self.period))
            .unwrap_or(u64::MAX);
        let had_any = self.used.iter().any(|&u| u > 0);
        self.used.fill(0);
        had_any
    }
}

impl Snapshot for RegulatorState {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.period);
        w.put_seq_len(self.budgets.len());
        for (i, &b) in self.budgets.iter().enumerate() {
            w.put_u64(b);
            w.put_bool(self.rt[i]);
            w.put_u64(self.wcet[i]);
            w.put_u64(self.used[i]);
        }
        w.put_u64(self.next_replenish);
        w.put_u64(self.violations);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let period = r.get_u64()?;
        if period != self.period {
            return Err(r.malformed(format!(
                "regulator period {period} disagrees with config {}",
                self.period
            )));
        }
        let n = r.seq_len()?;
        if n != self.budgets.len() {
            return Err(r.malformed(format!(
                "regulator for {n} threads, controller has {}",
                self.budgets.len()
            )));
        }
        for i in 0..n {
            let budget = r.get_u64()?;
            let rt = r.get_bool()?;
            let wcet = r.get_u64()?;
            if budget != self.budgets[i] || rt != self.rt[i] || wcet != self.wcet[i] {
                return Err(r.malformed(format!(
                    "regulator class {i} knobs {budget}/{rt}/{wcet} disagree with config \
                     {}/{}/{}",
                    self.budgets[i], self.rt[i], self.wcet[i]
                )));
            }
            self.used[i] = r.get_u64()?;
        }
        self.next_replenish = r.get_u64()?;
        self.violations = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegulationConfig;

    fn reg(period: u64, budgets: &[u64]) -> RegulatorState {
        let mut cfg = RegulationConfig::new(period);
        for &b in budgets {
            cfg = cfg.rt_class(b, None);
        }
        RegulatorState::new(&cfg.best_effort())
    }

    #[test]
    fn budget_exhaustion_demotes_and_replenish_restores() {
        let mut r = reg(100, &[2]);
        assert!(r.in_budget(0));
        assert!(!r.consume(0));
        assert!(r.consume(0)); // second service exhausts the bucket
        assert!(!r.in_budget(0));
        assert!(!r.consume(0)); // already demoted: no further change
        assert!(!r.maybe_replenish(99));
        assert!(r.maybe_replenish(100));
        assert!(r.in_budget(0));
        assert_eq!(r.next_replenish(), 200);
        // Idempotent at the same cycle; multi-period jumps land past now.
        assert!(!r.maybe_replenish(100));
        r.consume(0);
        assert!(r.maybe_replenish(750));
        assert_eq!(r.next_replenish(), 800);
    }

    #[test]
    fn best_effort_thread_never_holds_the_premium_tier() {
        let mut r = reg(100, &[4]);
        assert!(!r.in_budget(1)); // the trailing best_effort class
        assert!(!r.consume(1));
        assert_eq!(r.remaining(1), 0);
    }

    #[test]
    fn zero_budget_rt_class_is_pure_best_effort_demotion() {
        let mut r = reg(50, &[0]);
        assert!(!r.in_budget(0));
        assert!(!r.consume(0), "exhausting an empty bucket is not a change");
        r.maybe_replenish(50);
        assert!(!r.in_budget(0), "replenish cannot fill a zero bucket");
    }

    #[test]
    fn replenish_survives_clock_saturation() {
        let mut r = reg(7, &[1]);
        assert!(r.consume(0));
        assert!(r.maybe_replenish(u64::MAX)); // must terminate, not loop
        assert_eq!(r.next_replenish(), u64::MAX);
        assert!(r.in_budget(0));
        assert!(!r.maybe_replenish(u64::MAX));
    }

    #[test]
    fn wcet_bounds_and_violations() {
        let cfg = RegulationConfig::new(10_000)
            .rt_class(8, Some(4_000))
            .best_effort();
        let mut r = RegulatorState::new(&cfg);
        assert_eq!(r.wcet_bound(0), Some(4_000));
        assert_eq!(r.wcet_bound(1), None);
        assert_eq!(r.bound_violations(), 0);
        r.note_violation();
        assert_eq!(r.bound_violations(), 1);
    }

    #[test]
    fn snapshot_round_trip() {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let cfg = RegulationConfig::new(500)
            .rt_class(3, Some(2_000))
            .rt_class(0, None)
            .best_effort();
        let mut a = RegulatorState::new(&cfg);
        a.consume(0);
        a.note_violation();
        let mut w = SnapshotWriter::new(9);
        w.section("regulate", |s| a.save(s));
        let bytes = w.into_bytes();

        let restore_into = |target: &mut RegulatorState| {
            let mut r = SnapshotReader::new(&bytes, 9).unwrap();
            r.section("regulate", |s| target.restore(s))
        };
        let mut b = RegulatorState::new(&cfg);
        restore_into(&mut b).unwrap();
        assert_eq!(a, b);
        // Wrong shape or knobs is a typed error, not a panic.
        let mut narrow = RegulatorState::new(&RegulationConfig::new(500).rt_class(3, None));
        assert!(restore_into(&mut narrow).is_err());
        let mut knobs = RegulatorState::new(
            &RegulationConfig::new(500)
                .rt_class(4, Some(2_000))
                .rt_class(0, None)
                .best_effort(),
        );
        assert!(restore_into(&mut knobs).is_err());
        let mut period = RegulatorState::new(
            &RegulationConfig::new(501)
                .rt_class(3, Some(2_000))
                .rt_class(0, None)
                .best_effort(),
        );
        assert!(restore_into(&mut period).is_err());
    }
}
