//! Online per-thread slowdown estimation (ISSUE 7).
//!
//! Following the nvmevirt `tsu_fairness` recipe (SNIPPETS.md), each
//! thread's slowdown is the ratio of the time its requests took under
//! sharing to the time they would have taken running alone:
//!
//! ```text
//! slowdown_t = shared_cycles_t / alone_cycles_t   (clamped >= 1.0)
//! ```
//!
//! The **alone model** charges each completed request its intrinsic
//! closed-bank DRAM service cost (`t_RCD + t_CL + burst` for the paper's
//! closed row policy) — the latency it would see on an unloaded bank.
//! This is deliberately simple and has a known bias (DESIGN.md §16): it
//! ignores row-buffer locality and bank-level parallelism a thread would
//! enjoy alone, so it *overestimates* alone time for streaming threads
//! and therefore *underestimates* their slowdown. The estimates are used
//! comparatively (who is hurt most *right now*), where the bias largely
//! cancels.
//!
//! The estimator is policy state, not measurement: SD-VFTF scales its
//! virtual-finish-time keys by these ratios, so the estimator snapshots
//! with the controller and is **not** cleared by warmup stats resets.

use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Per-thread accumulators for online slowdown estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowdownEstimator {
    alone: Vec<u64>,
    shared: Vec<u64>,
}

impl SlowdownEstimator {
    /// Fresh estimator for `num_threads` threads (all slowdowns 1.0).
    pub fn new(num_threads: usize) -> Self {
        SlowdownEstimator {
            alone: vec![0; num_threads],
            shared: vec![0; num_threads],
        }
    }

    /// Number of tracked threads.
    pub fn num_threads(&self) -> usize {
        self.alone.len()
    }

    /// Records one completed request for `thread`: `alone` estimated
    /// stand-alone service cycles, `shared` measured cycles under
    /// sharing. Saturates instead of wrapping so adversarial clocks
    /// cannot corrupt the ratio.
    pub fn record(&mut self, thread: u32, alone: u64, shared: u64) {
        let t = thread as usize;
        self.alone[t] = self.alone[t].saturating_add(alone);
        self.shared[t] = self.shared[t].saturating_add(shared);
    }

    /// Accumulated alone-cycle estimate for `thread`.
    pub fn alone_cycles(&self, thread: u32) -> u64 {
        self.alone[thread as usize]
    }

    /// Accumulated measured shared cycles for `thread`.
    pub fn shared_cycles(&self, thread: u32) -> u64 {
        self.shared[thread as usize]
    }

    /// The thread's estimated slowdown, clamped to at least 1.0; 1.0
    /// before any completion.
    pub fn slowdown(&self, thread: u32) -> f64 {
        let t = thread as usize;
        if self.alone[t] == 0 {
            1.0
        } else {
            (self.shared[t] as f64 / self.alone[t] as f64).max(1.0)
        }
    }

    /// The maximum slowdown across threads (1.0 when idle).
    pub fn max_slowdown(&self) -> f64 {
        (0..self.alone.len() as u32)
            .map(|t| self.slowdown(t))
            .fold(1.0, f64::max)
    }
}

impl Snapshot for SlowdownEstimator {
    fn save(&self, w: &mut SectionWriter) {
        w.put_seq_len(self.alone.len());
        for t in 0..self.alone.len() {
            w.put_u64(self.alone[t]);
            w.put_u64(self.shared[t]);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let n = r.seq_len()?;
        if n != self.alone.len() {
            return Err(r.malformed(format!(
                "estimator for {n} threads, controller has {}",
                self.alone.len()
            )));
        }
        for t in 0..n {
            self.alone[t] = r.get_u64()?;
            self.shared[t] = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_with_clamp() {
        let mut e = SlowdownEstimator::new(2);
        assert_eq!(e.slowdown(0), 1.0);
        e.record(0, 14, 42);
        assert_eq!(e.slowdown(0), 3.0);
        // Shared below the alone estimate clamps to 1.0.
        e.record(1, 100, 20);
        assert_eq!(e.slowdown(1), 1.0);
        assert_eq!(e.max_slowdown(), 3.0);
    }

    #[test]
    fn saturating_accumulation() {
        let mut e = SlowdownEstimator::new(1);
        e.record(0, u64::MAX - 5, u64::MAX - 5);
        e.record(0, 100, 100);
        assert_eq!(e.alone_cycles(0), u64::MAX);
        assert_eq!(e.shared_cycles(0), u64::MAX);
        assert_eq!(e.slowdown(0), 1.0);
    }

    #[test]
    fn snapshot_round_trip() {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let mut a = SlowdownEstimator::new(2);
        a.record(0, 14, 99);
        a.record(1, 28, 28);
        let mut w = SnapshotWriter::new(3);
        w.section("slowdown", |s| a.save(s));
        let bytes = w.into_bytes();
        let mut b = SlowdownEstimator::new(2);
        let mut r = SnapshotReader::new(&bytes, 3).unwrap();
        r.section("slowdown", |s| b.restore(s)).unwrap();
        assert_eq!(a, b);
        let mut narrow = SlowdownEstimator::new(3);
        let mut r = SnapshotReader::new(&bytes, 3).unwrap();
        assert!(r.section("slowdown", |s| narrow.restore(s)).is_err());
    }
}
