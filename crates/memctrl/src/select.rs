//! O(log n) bank-scheduler selection structures (ISSUE 6 tentpole).
//!
//! The reference bank scheduler re-ranks its whole queue with a linear
//! scan on every evaluation: O(n) per decision, the scaling wall for
//! thousand-tenant share trees. This module replaces the scan with an
//! index-keyed structure while preserving the scan's selection *exactly*
//! (same winner, same tie-breaks, same `VftBound` event order):
//!
//! * [`IndexedHeap`] — a binary min-heap over `(key, id)` pairs with an
//!   external slot→position index, giving O(log n) insert/remove/re-key
//!   and O(1) peek;
//! * [`TournamentTree`] — a flat complete-binary-tree tournament over
//!   *row groups*, giving O(1) global minimum and O(log g) minimum
//!   excluding one group (the open row's hit group);
//! * `BankQueue` (crate-private) — the per-bank pending queue: a
//!   stable-slot slab plus a tombstoned admission-order list, with one
//!   `(read, write)` heap pair per distinct row and a tournament over
//!   the groups.
//!
//! # Why this decomposition is exact
//!
//! The linear scan's priority order ([`crate::policy::Priority`]) ranks
//! candidates by `(ready, cas, key, id)`. Within one bank evaluation all
//! surviving candidates are ready, so the scan reduces to: any ready CAS
//! (open-row hit) beats any ready RAS, then the smallest `(key, id)`
//! wins. Hits to the open row `r` are exactly the members of row group
//! `r`, so the best hit is the group-`r` heap minimum (per CAS kind,
//! gated on that kind's bank readiness); the best precharge candidate is
//! the minimum over every *other* group (`min_excluding`); the best
//! activate candidate on a closed bank is the global minimum. `(key, id)`
//! pairs are unique (admission ids are strictly monotonic), so the winner
//! is independent of heap layout — a rebuilt-on-restore heap with
//! renumbered slots selects identically.

use crate::request::MemoryRequest;
use std::cmp::Ordering;
use std::collections::HashMap;

/// A pending request plus its lazily bound virtual finish time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub(crate) req: MemoryRequest,
    pub(crate) vft: Option<f64>,
    /// RAS commands issued for this request so far (0 at admission);
    /// classifies the service it received: CAS with 0 prior = row hit,
    /// 1 = closed bank, 2 = bank conflict.
    pub(crate) ras_issued: u8,
}

/// A selection key: the scheduler's ranking pair `(key, id)` where `key`
/// is an arrival time or virtual finish time and `id` the admission-order
/// tiebreaker. Ordered exactly like [`crate::policy::Priority`] orders
/// candidates within one readiness/CAS class: smaller key first, then
/// smaller id; incomparable keys (impossible for the finite virtual
/// times the scheduler produces) compare equal, deferring to the id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelKey {
    /// Arrival time (FCFS variants) or virtual finish time (VFTF).
    pub key: f64,
    /// Admission-order tiebreaker; unique across all live requests.
    pub id: u64,
}

impl Eq for SelKey {}

impl PartialOrd for SelKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SelKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .partial_cmp(&other.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Marker for "slot not present in this heap" in the external position
/// index shared by all heaps of one `BankQueue`.
pub const NO_POS: u32 = u32::MAX;

/// A binary min-heap of `(SelKey, slot)` items with an *external*
/// slot-indexed position map, supporting O(log n) removal of an
/// arbitrary slot.
///
/// The position map is external (`&mut Vec<u32>`, indexed by slot,
/// [`NO_POS`] = absent) so one slab-sized map can be shared by every
/// heap a queue owns: a slot lives in at most one heap at a time, which
/// keeps the total index memory O(slab) instead of O(heaps × slab).
#[derive(Debug, Clone, Default)]
pub struct IndexedHeap {
    items: Vec<(SelKey, u32)>,
}

impl IndexedHeap {
    /// An empty heap.
    pub fn new() -> Self {
        IndexedHeap::default()
    }

    /// Number of items in the heap.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the heap holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The minimum `(key, slot)` without removing it.
    pub fn peek(&self) -> Option<(SelKey, u32)> {
        self.items.first().copied()
    }

    /// Inserts `slot` with `key`. Grows `pos` to cover `slot` if needed.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `slot` is already present.
    pub fn insert(&mut self, pos: &mut Vec<u32>, slot: u32, key: SelKey) {
        if pos.len() <= slot as usize {
            pos.resize(slot as usize + 1, NO_POS);
        }
        debug_assert_eq!(pos[slot as usize], NO_POS, "slot {slot} already indexed");
        self.items.push((key, slot));
        let i = self.items.len() - 1;
        pos[slot as usize] = i as u32;
        self.sift_up(pos, i);
    }

    /// Removes `slot` from the heap. Returns false when absent.
    pub fn remove(&mut self, pos: &mut [u32], slot: u32) -> bool {
        let Some(&p) = pos.get(slot as usize) else {
            return false;
        };
        if p == NO_POS {
            return false;
        }
        let i = p as usize;
        pos[slot as usize] = NO_POS;
        let last = self.items.len() - 1;
        if i != last {
            self.items.swap(i, last);
            self.items.pop();
            pos[self.items[i].1 as usize] = i as u32;
            // The swapped-in item may violate the heap property in either
            // direction relative to its new neighbourhood.
            self.sift_up(pos, i);
            self.sift_down(pos, i);
        } else {
            self.items.pop();
        }
        true
    }

    /// Re-keys `slot` in place (O(log n)).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `slot` is absent.
    pub fn update(&mut self, pos: &mut [u32], slot: u32, key: SelKey) {
        let i = pos[slot as usize];
        debug_assert_ne!(i, NO_POS, "slot {slot} not in heap");
        let i = i as usize;
        self.items[i].0 = key;
        self.sift_up(pos, i);
        self.sift_down(pos, i);
    }

    fn sift_up(&mut self, pos: &mut [u32], mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].0 < self.items[parent].0 {
                self.items.swap(i, parent);
                pos[self.items[i].1 as usize] = i as u32;
                pos[self.items[parent].1 as usize] = parent as u32;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, pos: &mut [u32], mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.items.len() && self.items[l].0 < self.items[smallest].0 {
                smallest = l;
            }
            if r < self.items.len() && self.items[r].0 < self.items[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            pos[self.items[i].1 as usize] = i as u32;
            pos[self.items[smallest].1 as usize] = smallest as u32;
            i = smallest;
        }
    }
}

/// A value competing in the [`TournamentTree`]: the group's best
/// `(key, slot)` pair, compared by key ([`SelKey`] pairs are unique, so
/// the slot never breaks a tie).
pub type TreeVal = (SelKey, u32);

fn tree_min(a: Option<TreeVal>, b: Option<TreeVal>) -> Option<TreeVal> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if y.0 < x.0 { y } else { x }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// A flat tournament (complete binary tree) over a growing set of
/// leaves, each holding an optional [`TreeVal`].
///
/// * [`TournamentTree::min`] — the overall winner, O(1);
/// * [`TournamentTree::min_excluding`] — the winner with one leaf masked
///   out, O(log g) by walking the masked leaf's root path and combining
///   the sibling subtree winners;
/// * [`TournamentTree::set`] — replay one leaf's matches up the tree,
///   O(log g).
///
/// Leaves are allocated once and never freed (a row group that goes
/// empty keeps its leaf with value `None`); capacity doubles with a
/// rebuild, amortized O(1) per allocation.
#[derive(Debug, Clone)]
pub struct TournamentTree {
    /// 1-based complete tree: `nodes[1]` is the root, leaf `l` lives at
    /// `nodes[cap + l]`. `nodes.len() == 2 * cap`.
    nodes: Vec<Option<TreeVal>>,
    cap: usize,
    leaves: usize,
}

impl Default for TournamentTree {
    fn default() -> Self {
        TournamentTree::new()
    }
}

impl TournamentTree {
    /// An empty tournament with no leaves.
    pub fn new() -> Self {
        TournamentTree {
            nodes: vec![None; 2],
            cap: 1,
            leaves: 0,
        }
    }

    /// Number of allocated leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves
    }

    /// Allocates the next leaf (initially `None`) and returns its index.
    pub fn push_leaf(&mut self) -> u32 {
        if self.leaves == self.cap {
            self.grow();
        }
        let leaf = self.leaves;
        self.leaves += 1;
        leaf as u32
    }

    fn grow(&mut self) {
        let new_cap = self.cap * 2;
        let mut nodes = vec![None; 2 * new_cap];
        nodes[new_cap..new_cap + self.leaves]
            .clone_from_slice(&self.nodes[self.cap..self.cap + self.leaves]);
        for n in (1..new_cap).rev() {
            nodes[n] = tree_min(nodes[2 * n], nodes[2 * n + 1]);
        }
        self.nodes = nodes;
        self.cap = new_cap;
    }

    /// Sets leaf `leaf`'s value and replays its matches to the root.
    pub fn set(&mut self, leaf: u32, v: Option<TreeVal>) {
        debug_assert!((leaf as usize) < self.leaves, "leaf {leaf} not allocated");
        let mut n = self.cap + leaf as usize;
        self.nodes[n] = v;
        while n > 1 {
            n /= 2;
            self.nodes[n] = tree_min(self.nodes[2 * n], self.nodes[2 * n + 1]);
        }
    }

    /// The overall winner across all leaves.
    pub fn min(&self) -> Option<TreeVal> {
        self.nodes[1]
    }

    /// The winner with leaf `leaf` masked out: combines the sibling
    /// subtree winners along the masked leaf's root path.
    pub fn min_excluding(&self, leaf: u32) -> Option<TreeVal> {
        debug_assert!((leaf as usize) < self.leaves, "leaf {leaf} not allocated");
        let mut n = self.cap + leaf as usize;
        let mut acc = None;
        while n > 1 {
            acc = tree_min(acc, self.nodes[n ^ 1]);
            n /= 2;
        }
        acc
    }
}

/// One row group's candidate heaps, split by CAS kind so the hit lookup
/// can honour per-kind bank readiness (a ready read must not be hidden
/// behind an earlier not-ready write, and vice versa).
#[derive(Debug, Clone, Default)]
struct Group {
    read: IndexedHeap,
    write: IndexedHeap,
}

impl Group {
    fn best(&self) -> Option<TreeVal> {
        tree_min(self.read.peek(), self.write.peek())
    }
}

/// The per-bank pending-request queue.
///
/// Storage is a stable-slot slab (`slots` + LIFO free list): a request
/// keeps its slot for its whole residence, so `Proposal::source` can
/// name it across cycles without the index churn of `Vec::remove`.
/// Admission order — which the FCFS ablation, fault-drop victim
/// selection, and the snapshot byte format all need — is a separate
/// `(slot, id)` list with lazy tombstones: a pair is live iff the slot
/// still holds a request with that id (slot reuse bumps the id; ids are
/// strictly monotonic). Dead pairs are compacted when they outnumber
/// live ones, keeping iteration amortized O(live).
///
/// With `indexed` set, the queue additionally maintains the row-group
/// heaps and the tournament over groups for every *keyed* entry (one
/// whose selection key is known: arrival-keyed schedulers key at push;
/// VFTF schedulers key at VFT binding). Unkeyed entries wait in the
/// `unbound` list (same tombstone scheme) until the scheduler's bind
/// pre-pass keys them in admission order. With `indexed` unset (the
/// retained linear reference path) all index upkeep is skipped and the
/// queue is just the slab + order list.
#[derive(Debug, Clone)]
pub(crate) struct BankQueue {
    indexed: bool,
    /// Keys are virtual finish times (VFTF schedulers) rather than
    /// arrival times; entries are keyed lazily at VFT binding.
    vftf: bool,
    slots: Vec<Option<Pending>>,
    free: Vec<u32>,
    live: usize,
    /// Admission-order `(slot, id)` pairs with lazy tombstones.
    order: Vec<(u32, u64)>,
    order_dead: usize,
    /// Admission-order `(slot, id)` pairs of entries awaiting a key
    /// (maintained only when `indexed && vftf`).
    unbound: Vec<(u32, u64)>,
    /// Row -> group id; groups are never freed (an emptied group keeps
    /// its tournament leaf as `None`), so ids are stable.
    group_of_row: HashMap<u32, u32>,
    groups: Vec<Group>,
    tree: TournamentTree,
    /// Shared slot→heap-position index (each slot is in ≤ 1 heap).
    heap_pos: Vec<u32>,
}

impl BankQueue {
    pub(crate) fn new(indexed: bool, vftf: bool) -> Self {
        BankQueue {
            indexed,
            vftf,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            order: Vec::new(),
            order_dead: 0,
            unbound: Vec::new(),
            group_of_row: HashMap::new(),
            groups: Vec::new(),
            tree: TournamentTree::new(),
            heap_pos: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The selection key of an entry, when known: arrival time for
    /// arrival-keyed schedulers, the bound VFT (if any) for VFTF ones.
    fn key_of(&self, p: &Pending) -> Option<f64> {
        if self.vftf {
            p.vft
        } else {
            Some(p.req.arrival.as_f64())
        }
    }

    /// Admits an entry (at the back of the admission order) and returns
    /// its slot.
    pub(crate) fn push(&mut self, p: Pending) -> u32 {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            (self.slots.len() - 1) as u32
        });
        debug_assert!(self.slots[slot as usize].is_none());
        let id = p.req.id.as_u64();
        self.slots[slot as usize] = Some(p);
        self.live += 1;
        self.order.push((slot, id));
        if self.indexed {
            match self.key_of(&p) {
                Some(key) => self.index_insert(slot, key, &p),
                None => self.unbound.push((slot, id)),
            }
        }
        slot
    }

    /// Removes the entry at `slot` and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub(crate) fn remove(&mut self, slot: u32) -> Pending {
        let p = self.slots[slot as usize].take().expect("live slot");
        self.live -= 1;
        self.free.push(slot);
        self.order_dead += 1;
        // Unkeyed entries leave a tombstone in `unbound`, cleaned by the
        // next bind pre-pass (the id check spots slot reuse).
        if self.indexed && self.key_of(&p).is_some() {
            let gid = self.group_of_row[&p.req.addr.row.as_u32()];
            let g = &mut self.groups[gid as usize];
            let heap = if p.req.kind.is_read() {
                &mut g.read
            } else {
                &mut g.write
            };
            heap.remove(&mut self.heap_pos, slot);
            let val = self.groups[gid as usize].best();
            self.tree.set(gid, val);
        }
        if self.order_dead > self.order.len() / 2 && self.order.len() > 32 {
            let slots = &self.slots;
            self.order.retain(
                |&(s, id)| matches!(&slots[s as usize], Some(q) if q.req.id.as_u64() == id),
            );
            self.order_dead = 0;
        }
        p
    }

    fn index_insert(&mut self, slot: u32, key: f64, p: &Pending) {
        let row = p.req.addr.row.as_u32();
        let gid = match self.group_of_row.get(&row) {
            Some(&g) => g,
            None => {
                let g = self.tree.push_leaf();
                debug_assert_eq!(g as usize, self.groups.len());
                self.groups.push(Group::default());
                self.group_of_row.insert(row, g);
                g
            }
        };
        let sel = SelKey {
            key,
            id: p.req.id.as_u64(),
        };
        let g = &mut self.groups[gid as usize];
        let heap = if p.req.kind.is_read() {
            &mut g.read
        } else {
            &mut g.write
        };
        heap.insert(&mut self.heap_pos, slot, sel);
        let val = self.groups[gid as usize].best();
        self.tree.set(gid, val);
    }

    /// Shared access to the entry at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub(crate) fn get(&self, slot: u32) -> &Pending {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    /// Mutable access to the entry at `slot`. Callers must not mutate
    /// fields the index keys on (`vft` on an indexed queue — bind via
    /// [`BankQueue::bind`] / [`BankQueue::drain_unbound`] instead);
    /// `ras_issued` is never a key and is safe to bump.
    pub(crate) fn get_mut(&mut self, slot: u32) -> &mut Pending {
        self.slots[slot as usize].as_mut().expect("live slot")
    }

    /// Runs the bind pre-pass: visits every still-unkeyed entry in
    /// admission order; `f` returns the VFT to bind (the caller emits
    /// its event) or `None` to leave the entry unkeyed. Also compacts
    /// tombstones out of the unbound list.
    pub(crate) fn drain_unbound<F>(&mut self, mut f: F)
    where
        F: FnMut(&Pending) -> Option<f64>,
    {
        debug_assert!(self.indexed && self.vftf);
        let mut kept = 0;
        for i in 0..self.unbound.len() {
            let (slot, id) = self.unbound[i];
            let alive = matches!(
                &self.slots[slot as usize],
                Some(p) if p.req.id.as_u64() == id && p.vft.is_none()
            );
            if !alive {
                continue; // tombstone (removed, reused, or already bound)
            }
            let p = *self.slots[slot as usize].as_ref().expect("checked above");
            match f(&p) {
                Some(vft) => {
                    self.slots[slot as usize]
                        .as_mut()
                        .expect("checked above")
                        .vft = Some(vft);
                    self.index_insert(slot, vft, &p);
                }
                None => {
                    self.unbound[kept] = (slot, id);
                    kept += 1;
                }
            }
        }
        self.unbound.truncate(kept);
    }

    /// Number of admission-order cells (including tombstones); use with
    /// [`BankQueue::order_slot`] to scan in admission order.
    pub(crate) fn order_len(&self) -> usize {
        self.order.len()
    }

    /// The live slot at admission-order cell `i`, or `None` for a
    /// tombstone.
    pub(crate) fn order_slot(&self, i: usize) -> Option<u32> {
        let (slot, id) = self.order[i];
        match &self.slots[slot as usize] {
            Some(p) if p.req.id.as_u64() == id => Some(slot),
            _ => None,
        }
    }

    /// The oldest live entry's slot (the FCFS candidate).
    pub(crate) fn front_slot(&self) -> Option<u32> {
        (0..self.order.len()).find_map(|i| self.order_slot(i))
    }

    /// The `n`-th live entry's slot in admission order (fault-drop
    /// victim selection).
    pub(crate) fn nth_slot(&self, n: usize) -> Option<u32> {
        (0..self.order.len())
            .filter_map(|i| self.order_slot(i))
            .nth(n)
    }

    /// Iterates live entries in admission order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, &Pending)> {
        (0..self.order.len())
            .filter_map(|i| self.order_slot(i))
            .map(|slot| (slot, self.get(slot)))
    }

    /// The best keyed entry overall (the activate candidate on a closed
    /// bank; the locked FQ scheduler's pick).
    pub(crate) fn min_all(&self) -> Option<TreeVal> {
        debug_assert!(self.indexed);
        self.tree.min()
    }

    /// The best keyed entry whose row differs from `row` (the precharge
    /// candidate when `row` is open).
    pub(crate) fn min_excluding_row(&self, row: u32) -> Option<TreeVal> {
        debug_assert!(self.indexed);
        match self.group_of_row.get(&row) {
            Some(&g) => self.tree.min_excluding(g),
            None => self.tree.min(),
        }
    }

    /// The best keyed open-row hit, honouring per-kind readiness: reads
    /// compete only if `want_read`, writes only if `want_write`.
    pub(crate) fn min_cas(&self, row: u32, want_read: bool, want_write: bool) -> Option<TreeVal> {
        debug_assert!(self.indexed);
        let &gid = self.group_of_row.get(&row)?;
        let g = &self.groups[gid as usize];
        let r = if want_read { g.read.peek() } else { None };
        let w = if want_write { g.write.peek() } else { None };
        tree_min(r, w)
    }

    /// Empties the queue, keeping configuration flags (snapshot restore
    /// re-pushes entries in admission order, rebuilding all derived
    /// index state).
    pub(crate) fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.order.clear();
        self.order_dead = 0;
        self.unbound.clear();
        self.group_of_row.clear();
        self.groups.clear();
        self.tree = TournamentTree::new();
        self.heap_pos.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(key: f64, id: u64) -> SelKey {
        SelKey { key, id }
    }

    #[test]
    fn selkey_orders_by_key_then_id() {
        assert!(k(1.0, 9) < k(2.0, 1));
        assert!(k(1.0, 1) < k(1.0, 2));
        assert_eq!(k(3.0, 3).cmp(&k(3.0, 3)), Ordering::Equal);
    }

    #[test]
    fn heap_insert_peek_remove() {
        let mut h = IndexedHeap::new();
        let mut pos = Vec::new();
        h.insert(&mut pos, 0, k(5.0, 0));
        h.insert(&mut pos, 1, k(3.0, 1));
        h.insert(&mut pos, 2, k(4.0, 2));
        assert_eq!(h.peek(), Some((k(3.0, 1), 1)));
        assert!(h.remove(&mut pos, 1));
        assert_eq!(h.peek(), Some((k(4.0, 2), 2)));
        assert!(!h.remove(&mut pos, 1), "double remove must be a no-op");
        assert!(h.remove(&mut pos, 0));
        assert!(h.remove(&mut pos, 2));
        assert!(h.is_empty());
    }

    #[test]
    fn heap_update_rekeys_in_place() {
        let mut h = IndexedHeap::new();
        let mut pos = Vec::new();
        for (slot, key) in [(0, 10.0), (1, 20.0), (2, 30.0)] {
            h.insert(&mut pos, slot, k(key, u64::from(slot)));
        }
        h.update(&mut pos, 2, k(1.0, 2));
        assert_eq!(h.peek(), Some((k(1.0, 2), 2)));
        h.update(&mut pos, 2, k(99.0, 2));
        assert_eq!(h.peek(), Some((k(10.0, 0), 0)));
    }

    #[test]
    fn heap_duplicate_keys_break_ties_by_id() {
        let mut h = IndexedHeap::new();
        let mut pos = Vec::new();
        h.insert(&mut pos, 0, k(7.0, 4));
        h.insert(&mut pos, 1, k(7.0, 2));
        h.insert(&mut pos, 2, k(7.0, 3));
        assert_eq!(h.peek(), Some((k(7.0, 2), 1)));
    }

    #[test]
    fn tournament_min_and_exclusion() {
        let mut t = TournamentTree::new();
        let a = t.push_leaf();
        let b = t.push_leaf();
        let c = t.push_leaf();
        assert_eq!(t.min(), None);
        t.set(a, Some((k(5.0, 0), 10)));
        t.set(b, Some((k(2.0, 1), 11)));
        t.set(c, Some((k(9.0, 2), 12)));
        assert_eq!(t.min(), Some((k(2.0, 1), 11)));
        assert_eq!(t.min_excluding(b), Some((k(5.0, 0), 10)));
        assert_eq!(t.min_excluding(a), Some((k(2.0, 1), 11)));
        t.set(b, None);
        assert_eq!(t.min(), Some((k(5.0, 0), 10)));
        assert_eq!(t.min_excluding(a), Some((k(9.0, 2), 12)));
    }

    #[test]
    fn tournament_grows_past_initial_capacity() {
        let mut t = TournamentTree::new();
        for i in 0..37u64 {
            let leaf = t.push_leaf();
            t.set(leaf, Some((k(100.0 - i as f64, i), i as u32)));
        }
        // The last leaf has the smallest key.
        assert_eq!(t.min(), Some((k(100.0 - 36.0, 36), 36)));
        assert_eq!(t.min_excluding(36), Some((k(100.0 - 35.0, 35), 35)));
    }

    // ---- BankQueue vs a naive linear-scan oracle (CaseRunner) ----------

    use crate::request::{RequestId, RequestKind, ThreadId};
    use fqms_dram::command::{BankId, ColId, DramAddress, RankId, RowId};
    use fqms_sim::clock::DramCycle;
    use fqms_sim::rng::{CaseRunner, SimRng};

    /// One randomized queue operation.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// Admit a request to `row` (read/write), optionally pre-keyed
        /// (at-arrival binding); `key` carries the VFT when pre-keyed.
        Push {
            row: u32,
            write: bool,
            arrival: u64,
            key: Option<f64>,
        },
        /// Remove the `n`-th live entry in admission order (mod live).
        Remove(usize),
        /// Bind the `n`-th unkeyed entry (mod unbound count) to `key`.
        Bind { nth: usize, key: f64 },
    }

    /// Oracle entry: `(id, row, write, key)` in admission order.
    type OracleEntry = (u64, u32, bool, Option<f64>);

    fn request(id: u64, row: u32, write: bool, arrival: u64) -> MemoryRequest {
        MemoryRequest {
            id: RequestId::new(id),
            thread: ThreadId::new(0),
            kind: if write {
                RequestKind::Write
            } else {
                RequestKind::Read
            },
            addr: DramAddress {
                rank: RankId::new(0),
                bank: BankId::new(0),
                row: RowId::new(row),
                col: ColId::new(0),
            },
            arrival: DramCycle::new(arrival),
        }
    }

    /// Key palette stressing the orderings the scheduler meets in the
    /// wild: heavy duplicates (id tiebreaks), u64-wraparound-adjacent
    /// clock values, and large magnitudes where f64 granularity exceeds 1.
    fn gen_key(rng: &mut SimRng) -> f64 {
        match rng.next_below(4) {
            0 => rng.next_below(8) as f64,
            1 => (u64::MAX - rng.next_below(4)) as f64,
            2 => rng.next_below(1 << 60) as f64,
            _ => 42.0,
        }
    }

    fn gen_ops(rng: &mut SimRng) -> Vec<Op> {
        let n = 4 + rng.next_below(60);
        (0..n)
            .map(|_| match rng.next_below(8) {
                0..=3 => Op::Push {
                    row: rng.next_below(5) as u32,
                    write: rng.chance(0.4),
                    arrival: rng.next_below(1 << 40),
                    key: rng.chance(0.3).then(|| gen_key(rng)),
                },
                4 | 5 => Op::Remove(rng.next_below(16) as usize),
                _ => Op::Bind {
                    nth: rng.next_below(16) as usize,
                    key: gen_key(rng),
                },
            })
            .collect()
    }

    fn oracle_min<'a, I>(live: I) -> Option<(f64, u64)>
    where
        I: Iterator<Item = &'a OracleEntry>,
    {
        live.filter_map(|&(id, _, _, key)| key.map(|v| (v, id)))
            .min_by(|a, b| SelKey { key: a.0, id: a.1 }.cmp(&SelKey { key: b.0, id: b.1 }))
    }

    fn as_pair(v: Option<TreeVal>, q: &BankQueue) -> Option<(f64, u64)> {
        v.map(|(sel, slot)| {
            assert_eq!(
                q.get(slot).req.id.as_u64(),
                sel.id,
                "index returned a stale slot"
            );
            (sel.key, sel.id)
        })
    }

    /// Replays `ops` against a vftf-indexed queue and a naive oracle,
    /// cross-checking every query surface after every operation.
    fn check_against_oracle(ops: &[Op]) -> Result<(), String> {
        let mut q = BankQueue::new(true, true);
        let mut oracle: Vec<OracleEntry> = Vec::new();
        let mut next_id = 0u64;
        for (step, &op) in ops.iter().enumerate() {
            match op {
                Op::Push {
                    row,
                    write,
                    arrival,
                    key,
                } => {
                    let id = next_id;
                    next_id += 1;
                    q.push(Pending {
                        req: request(id, row, write, arrival),
                        vft: key,
                        ras_issued: 0,
                    });
                    oracle.push((id, row, write, key));
                }
                Op::Remove(n) => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let n = n % oracle.len();
                    let slot = q.nth_slot(n).ok_or_else(|| {
                        format!(
                            "step {step}: nth_slot({n}) missing with {} live",
                            oracle.len()
                        )
                    })?;
                    let removed = q.remove(slot);
                    let (id, ..) = oracle.remove(n);
                    if removed.req.id.as_u64() != id {
                        return Err(format!(
                            "step {step}: removed id {} oracle expected {id}",
                            removed.req.id.as_u64()
                        ));
                    }
                }
                Op::Bind { nth, key } => {
                    let unbound: Vec<u64> = oracle
                        .iter()
                        .filter(|e| e.3.is_none())
                        .map(|e| e.0)
                        .collect();
                    if unbound.is_empty() {
                        continue;
                    }
                    let target = unbound[nth % unbound.len()];
                    q.drain_unbound(|p| (p.req.id.as_u64() == target).then_some(key));
                    oracle.iter_mut().find(|e| e.0 == target).expect("listed").3 = Some(key);
                }
            }
            // --- cross-check every query surface ---
            if q.len() != oracle.len() {
                return Err(format!(
                    "step {step}: len {} != oracle {}",
                    q.len(),
                    oracle.len()
                ));
            }
            let iter_ids: Vec<u64> = q.iter().map(|(_, p)| p.req.id.as_u64()).collect();
            let oracle_ids: Vec<u64> = oracle.iter().map(|e| e.0).collect();
            if iter_ids != oracle_ids {
                return Err(format!(
                    "step {step}: admission order {iter_ids:?} != {oracle_ids:?}"
                ));
            }
            let front = q.front_slot().map(|s| q.get(s).req.id.as_u64());
            if front != oracle.first().map(|e| e.0) {
                return Err(format!("step {step}: front {front:?}"));
            }
            if as_pair(q.min_all(), &q) != oracle_min(oracle.iter()) {
                return Err(format!(
                    "step {step}: min_all {:?} != {:?}",
                    as_pair(q.min_all(), &q),
                    oracle_min(oracle.iter())
                ));
            }
            for row in 0..5u32 {
                let got = as_pair(q.min_excluding_row(row), &q);
                let want = oracle_min(oracle.iter().filter(|e| e.1 != row));
                if got != want {
                    return Err(format!(
                        "step {step}: min_excluding_row({row}) {got:?} != {want:?}"
                    ));
                }
                for (want_read, want_write) in [(true, true), (true, false), (false, true)] {
                    let got = as_pair(q.min_cas(row, want_read, want_write), &q);
                    let want = oracle_min(
                        oracle
                            .iter()
                            .filter(|e| e.1 == row && if e.2 { want_write } else { want_read }),
                    );
                    if got != want {
                        return Err(format!(
                            "step {step}: min_cas({row}, {want_read}, {want_write}) \
                             {got:?} != {want:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    #[test]
    fn bank_queue_matches_linear_oracle() {
        CaseRunner::new("bank-queue-vs-oracle").run(
            gen_ops,
            |ops| {
                // Shrink: drop halves, then drop single ops back to front.
                let mut c = Vec::new();
                if ops.len() > 1 {
                    c.push(ops[..ops.len() / 2].to_vec());
                    c.push(ops[ops.len() / 2..].to_vec());
                }
                for i in (0..ops.len()).rev().take(8) {
                    let mut shorter = ops.clone();
                    shorter.remove(i);
                    c.push(shorter);
                }
                c
            },
            |ops| check_against_oracle(ops),
        );
    }

    #[test]
    fn arrival_keyed_queue_keys_at_push() {
        // Non-VFTF mode: every entry is keyed by arrival at push; the
        // tournament tracks pushes and removes with no bind step.
        let mut q = BankQueue::new(true, false);
        for (i, arrival) in [50u64, 10, 30].into_iter().enumerate() {
            q.push(Pending {
                req: request(i as u64, 1, false, arrival),
                vft: None,
                ras_issued: 0,
            });
        }
        let (sel, slot) = q.min_all().expect("keyed");
        assert_eq!(sel.key, 10.0);
        assert_eq!(q.get(slot).req.id.as_u64(), 1);
        q.remove(slot);
        assert_eq!(q.min_all().map(|(s, _)| s.key), Some(30.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn linear_mode_skips_index_upkeep() {
        // The reference path keeps only the slab and order list.
        let mut q = BankQueue::new(false, true);
        let slot = q.push(Pending {
            req: request(0, 3, false, 7),
            vft: None,
            ras_issued: 0,
        });
        q.get_mut(slot).vft = Some(5.0); // linear binding writes in place
        assert_eq!(q.get(slot).vft, Some(5.0));
        assert_eq!(q.remove(slot).req.id.as_u64(), 0);
        assert!(q.is_empty());
    }
}
