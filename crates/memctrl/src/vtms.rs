//! Virtual Time Memory System (VTMS) bookkeeping — the core of the FQ
//! memory scheduler (paper Sections 3.1 and 3.2).
//!
//! Each thread `i` is allocated a share `phi_i` of the memory system and is
//! modelled as running on a private memory system whose timing is scaled by
//! `1/phi_i`. Per thread, the hardware keeps:
//!
//! * one **bank finish-time register** `B_j.R_i` per bank — the virtual
//!   finish time of the thread's previous request to bank `j`,
//! * one **channel finish-time register** `C.R_i`,
//! * the share register `phi_i`.
//!
//! A request's **virtual finish time** (Equation 7) is
//!
//! ```text
//! C.F_i^k = max{ max{a_i^k, B_j.R_i} + B.L_i^k / phi_i, C.R_i } + C.L_i^k / phi_i
//! ```
//!
//! where `B.L_i^k` is the bank service the request will need given the
//! bank's state (Table 3) and `C.L_i^k = BL/2` is the channel (data bus)
//! service. Registers are updated as SDRAM commands actually issue
//! (Equations 8 and 9) using the per-command service times of Table 4, so
//! virtual time tracks the service a thread *actually consumed*.
//!
//! Virtual time is kept as `f64`: shares are arbitrary fractions, and the
//! magnitudes involved (≤ 2^40 cycles divided by shares ≥ 2^-10) stay well
//! inside the 53-bit exact-integer range of `f64`.

use fqms_dram::bank::BankState;
use fqms_dram::command::{CommandKind, RowId};
use fqms_dram::timing::TimingParams;
use fqms_sim::clock::DramCycle;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// The bank service time `B.L_i^k` a request will require, classified by
/// the state of its bank at service time (the paper's Table 3).
///
/// # Example
///
/// ```
/// use fqms_memctrl::vtms::bank_service;
/// use fqms_dram::bank::BankState;
/// use fqms_dram::command::RowId;
/// use fqms_dram::timing::TimingParams;
///
/// let t = TimingParams::ddr2_800();
/// // Open row, matching row: a row-buffer hit costs t_CL.
/// assert_eq!(bank_service(BankState::Open(RowId::new(3)), RowId::new(3), &t), 5);
/// // Closed bank: t_RCD + t_CL.
/// assert_eq!(bank_service(BankState::Closed, RowId::new(3), &t), 10);
/// // Open row, different row: a bank conflict costs t_RP + t_RCD + t_CL.
/// assert_eq!(bank_service(BankState::Open(RowId::new(9)), RowId::new(3), &t), 15);
/// ```
pub fn bank_service(state: BankState, target_row: RowId, t: &TimingParams) -> u64 {
    match state {
        BankState::Open(open) if open == target_row => t.service_row_hit(),
        BankState::Open(_) => t.service_conflict(),
        BankState::Closed => t.service_closed(),
    }
}

/// The VTMS register-update service times per issued SDRAM command (the
/// paper's Table 4): bank service `B_cmd.L` and, for CAS commands, channel
/// service `C_cmd.L = BL/2`.
///
/// Returns `(bank_service, Option<channel_service>)`; refresh commands do
/// not touch VTMS state and return `(0, None)`.
pub fn update_service(kind: CommandKind, t: &TimingParams) -> (u64, Option<u64>) {
    match kind {
        CommandKind::Precharge => (t.precharge_update_service(), None),
        CommandKind::Activate => (t.t_rcd, None),
        CommandKind::Read => (t.t_cl, Some(t.burst)),
        CommandKind::Write => (t.t_wl, Some(t.burst)),
        CommandKind::Refresh => (0, None),
    }
}

/// Per-thread VTMS registers and the virtual-time equations.
///
/// # Example
///
/// ```
/// use fqms_memctrl::vtms::Vtms;
/// use fqms_sim::clock::DramCycle;
///
/// let mut v = Vtms::new(0.5, 8).unwrap();
/// // A request arriving at cycle 100 needing 10 cycles of bank service
/// // and 4 of channel service on an idle VTMS finishes at
/// // 100 + 10/0.5 + 4/0.5 = 128 virtual time.
/// let f = v.virtual_finish_time(DramCycle::new(100), 0, 10, 4);
/// assert_eq!(f, 128.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Vtms {
    phi: f64,
    /// `B_j.R_i` for every bank `j` (global bank index across ranks).
    bank_regs: Vec<f64>,
    /// `C.R_i`.
    channel_reg: f64,
}

impl Vtms {
    /// Creates VTMS state for a thread with share `phi` over a memory
    /// system with `total_banks` banks.
    ///
    /// # Errors
    ///
    /// Returns an error if `phi` is not in `(0, 1]` or `total_banks` is
    /// zero.
    pub fn new(phi: f64, total_banks: usize) -> Result<Self, String> {
        if !(phi > 0.0 && phi <= 1.0) {
            return Err(format!("share phi must be in (0, 1], got {phi}"));
        }
        if total_banks == 0 {
            return Err("total_banks must be non-zero".to_string());
        }
        Ok(Vtms {
            phi,
            bank_regs: vec![0.0; total_banks],
            channel_reg: 0.0,
        })
    }

    /// The thread's allocated share `phi_i`.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// The bank finish-time register `B_j.R_i`.
    pub fn bank_reg(&self, bank: usize) -> f64 {
        self.bank_regs[bank]
    }

    /// The channel finish-time register `C.R_i`.
    pub fn channel_reg(&self) -> f64 {
        self.channel_reg
    }

    /// Equation 7: the virtual finish time of a request that arrived at
    /// `arrival`, targets bank `bank`, and will need `bank_service` cycles
    /// of bank service and `channel_service` cycles of channel service on
    /// the thread's private VTMS.
    pub fn virtual_finish_time(
        &self,
        arrival: DramCycle,
        bank: usize,
        bank_service: u64,
        channel_service: u64,
    ) -> f64 {
        let a = arrival.as_f64();
        let bank_start = a.max(self.bank_regs[bank]);
        let bank_finish = bank_start + bank_service as f64 / self.phi;
        let channel_start = bank_finish.max(self.channel_reg);
        channel_start + channel_service as f64 / self.phi
    }

    /// Equation 8: update the bank register when an SDRAM command issues
    /// for a request with arrival time `arrival`:
    /// `B_j.R_i = max{a_i^k, B_j.R_i} + B_cmd.L / phi_i`.
    pub fn update_bank(&mut self, arrival: DramCycle, bank: usize, bank_cmd_service: u64) {
        let r = &mut self.bank_regs[bank];
        *r = r.max(arrival.as_f64()) + bank_cmd_service as f64 / self.phi;
    }

    /// Equation 9: update the channel register when a CAS command issues
    /// (after the bank register has been updated):
    /// `C.R_i = max{B_j.R_i, C.R_i} + C_cmd.L / phi_i`.
    pub fn update_channel(&mut self, bank: usize, channel_cmd_service: u64) {
        self.channel_reg =
            self.channel_reg.max(self.bank_regs[bank]) + channel_cmd_service as f64 / self.phi;
    }

    /// Applies the full Table 4 update for an issued command of `kind` on
    /// behalf of a request with the given `arrival`, in the order the paper
    /// specifies (bank register first, then channel register for CAS).
    pub fn apply_command(
        &mut self,
        kind: CommandKind,
        arrival: DramCycle,
        bank: usize,
        t: &TimingParams,
    ) {
        let (bank_svc, chan_svc) = update_service(kind, t);
        if bank_svc > 0 {
            self.update_bank(arrival, bank, bank_svc);
        }
        if let Some(c) = chan_svc {
            self.update_channel(bank, c);
        }
    }
}

/// The share `phi` and the bank count are configuration; the finish-time
/// registers are the state. Registers round-trip via their IEEE-754 bit
/// patterns, so a restored VTMS produces bit-identical virtual-time
/// arithmetic (Equations 7–9) from the first post-resume command on. The
/// share is compared by bit pattern too: two configs that differ in any
/// share must not exchange snapshots.
impl Snapshot for Vtms {
    fn save(&self, w: &mut SectionWriter) {
        w.put_f64(self.phi);
        w.put_seq_len(self.bank_regs.len());
        for &b in &self.bank_regs {
            w.put_f64(b);
        }
        w.put_f64(self.channel_reg);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let phi = r.get_f64()?;
        if phi.to_bits() != self.phi.to_bits() {
            return Err(r.malformed(format!("share {phi} != configured {}", self.phi)));
        }
        let n = r.seq_len()?;
        if n != self.bank_regs.len() {
            return Err(r.malformed(format!(
                "{n} bank registers, target has {}",
                self.bank_regs.len()
            )));
        }
        for b in &mut self.bank_regs {
            *b = r.get_f64()?;
        }
        self.channel_reg = r.get_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr2_800()
    }

    #[test]
    fn table_4_update_services() {
        let t = t();
        assert_eq!(update_service(CommandKind::Precharge, &t), (13, None));
        assert_eq!(update_service(CommandKind::Activate, &t), (5, None));
        assert_eq!(update_service(CommandKind::Read, &t), (5, Some(4)));
        assert_eq!(update_service(CommandKind::Write, &t), (4, Some(4)));
        assert_eq!(update_service(CommandKind::Refresh, &t), (0, None));
    }

    #[test]
    fn rejects_bad_phi() {
        assert!(Vtms::new(0.0, 8).is_err());
        assert!(Vtms::new(-0.5, 8).is_err());
        assert!(Vtms::new(1.5, 8).is_err());
        assert!(Vtms::new(1.0, 0).is_err());
        assert!(Vtms::new(1.0, 8).is_ok());
    }

    #[test]
    fn finish_time_on_idle_vtms_is_arrival_plus_scaled_service() {
        let v = Vtms::new(0.25, 8).unwrap();
        // 10 bank cycles + 4 channel cycles at phi = 1/4 -> 40 + 16.
        let f = v.virtual_finish_time(DramCycle::new(1000), 3, 10, 4);
        assert_eq!(f, 1000.0 + 40.0 + 16.0);
    }

    #[test]
    fn busy_bank_register_dominates_arrival() {
        let mut v = Vtms::new(0.5, 8).unwrap();
        v.update_bank(DramCycle::new(0), 2, 50); // B_2.R = 100
        let f = v.virtual_finish_time(DramCycle::new(10), 2, 5, 4);
        // bank start = max(10, 100) = 100; finish = 110; channel = 110 + 8.
        assert_eq!(f, 118.0);
    }

    #[test]
    fn channel_register_serializes_bursts() {
        let mut v = Vtms::new(1.0, 8).unwrap();
        v.update_bank(DramCycle::new(0), 0, 10);
        v.update_channel(0, 4); // C.R = 14
                                // A second request to a different, idle bank with tiny bank service
                                // still queues behind the thread's own channel backlog.
        let f = v.virtual_finish_time(DramCycle::new(0), 1, 5, 4);
        assert_eq!(f, 14.0 + 4.0);
    }

    #[test]
    fn equation_8_resets_to_arrival_after_idle() {
        let mut v = Vtms::new(0.5, 8).unwrap();
        v.update_bank(DramCycle::new(0), 0, 5); // B_0.R = 10
                                                // A much later arrival restarts virtual time at the arrival.
        v.update_bank(DramCycle::new(500), 0, 5);
        assert_eq!(v.bank_reg(0), 510.0);
    }

    #[test]
    fn apply_command_read_updates_both_registers() {
        let t = t();
        let mut v = Vtms::new(0.5, 8).unwrap();
        v.apply_command(CommandKind::Activate, DramCycle::new(100), 1, &t);
        // bank reg = 100 + tRCD/0.5 = 110, channel untouched.
        assert_eq!(v.bank_reg(1), 110.0);
        assert_eq!(v.channel_reg(), 0.0);
        v.apply_command(CommandKind::Read, DramCycle::new(100), 1, &t);
        // bank reg = 110 + tCL/0.5 = 120; channel = max(0,120) + 8 = 128.
        assert_eq!(v.bank_reg(1), 120.0);
        assert_eq!(v.channel_reg(), 128.0);
    }

    #[test]
    fn apply_refresh_is_a_no_op() {
        let t = t();
        let mut v = Vtms::new(0.5, 8).unwrap();
        v.apply_command(CommandKind::Refresh, DramCycle::new(50), 0, &t);
        assert_eq!(v.bank_reg(0), 0.0);
        assert_eq!(v.channel_reg(), 0.0);
    }

    #[test]
    fn lower_share_means_later_finish() {
        let big = Vtms::new(0.5, 8).unwrap();
        let small = Vtms::new(0.25, 8).unwrap();
        let a = DramCycle::new(0);
        assert!(small.virtual_finish_time(a, 0, 10, 4) > big.virtual_finish_time(a, 0, 10, 4));
    }

    #[test]
    fn bank_registers_are_independent() {
        let mut v = Vtms::new(0.5, 4).unwrap();
        v.update_bank(DramCycle::new(0), 0, 100);
        assert_eq!(v.bank_reg(1), 0.0);
        assert_eq!(v.bank_reg(0), 200.0);
    }
}
