//! Per-thread transaction and write buffer accounting.
//!
//! The paper statically partitions the controller's buffers: "Each thread
//! is allocated 16 transaction buffer entries, and 8 write buffer entries.
//! The memory controller NACKs memory requests from a thread when that
//! thread's buffer entries are full, thus applying back pressure to that
//! thread independent of the other threads on the CMP."
//!
//! Every accepted request occupies one transaction-buffer entry until it
//! completes; a write additionally occupies a write-buffer entry (the line
//! data) until its write command issues to the SDRAM.

use crate::request::RequestKind;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// The request class an overload-control shed decision applies to
/// (ISSUE 10). Premium / real-time threads are never shed; these classes
/// name the best-effort traffic the tiered shedder drops at each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedClass {
    /// A best-effort writeback, shed in the `Degraded` state: write data
    /// is the least latency-critical traffic, so it is sacrificed first.
    BestEffortWrite,
    /// Any best-effort request, shed in the deeper `Shedding` state.
    BestEffort,
}

impl ShedClass {
    /// Stable wire encoding used by the flat observability event
    /// (`fqms_obs::Event::Shed { class }`).
    pub fn as_u8(self) -> u8 {
        match self {
            ShedClass::BestEffortWrite => 0,
            ShedClass::BestEffort => 1,
        }
    }
}

impl std::fmt::Display for ShedClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedClass::BestEffortWrite => f.write_str("best-effort write"),
            ShedClass::BestEffort => f.write_str("best-effort"),
        }
    }
}

/// Typed back-pressure: why a request was refused admission, and what the
/// requester should do about it.
///
/// The taxonomy distinguishes three fundamentally different signals:
///
/// * **Buffer full** (`TransactionBufferFull` / `WriteBufferFull`) — the
///   thread's static partition has no free entry. Transient; retry once
///   an in-flight request completes.
/// * **`Throttled`** — the overload controller classified the thread as a
///   bandwidth hog and its admission tokens for the current period are
///   exhausted. Retry no earlier than `retry_after` cycles from now, when
///   the token bucket replenishes.
/// * **`Shed`** — the controller is saturated and deliberately dropped
///   the request to protect premium traffic. Terminal: the request will
///   never be admitted; do **not** retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Nack {
    /// The thread's transaction buffer partition is full.
    TransactionBufferFull,
    /// The thread's write buffer partition is full.
    WriteBufferFull,
    /// The thread is token-gated by the admission throttle; retrying
    /// before `retry_after` cycles have elapsed cannot succeed.
    Throttled {
        /// Cycles until the thread's tokens replenish (at least 1).
        retry_after: u64,
    },
    /// The request was dropped by the tiered load shedder; `class` names
    /// the traffic class sacrificed. Terminal — never retried.
    Shed {
        /// Which best-effort class the shed decision applied to.
        class: ShedClass,
    },
}

impl Nack {
    /// True for the buffer-capacity family — the only variants that
    /// signal genuine buffer back-pressure (and the only pressure the
    /// saturation detector counts, so shedding cannot feed itself).
    pub fn is_buffer_full(self) -> bool {
        matches!(self, Nack::TransactionBufferFull | Nack::WriteBufferFull)
    }
}

impl std::fmt::Display for Nack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Nack::TransactionBufferFull => f.write_str("transaction buffer full"),
            Nack::WriteBufferFull => f.write_str("write buffer full"),
            Nack::Throttled { retry_after } => {
                write!(f, "throttled; retry after {retry_after} cycles")
            }
            Nack::Shed { class } => write!(f, "shed ({class} load shed)"),
        }
    }
}

impl std::error::Error for Nack {}

/// Occupancy tracker for one thread's statically partitioned buffer
/// entries.
///
/// # Example
///
/// ```
/// use fqms_memctrl::buffers::ThreadBuffers;
/// use fqms_memctrl::request::RequestKind;
///
/// let mut b = ThreadBuffers::new(2, 1);
/// b.try_admit(RequestKind::Read).unwrap();
/// b.try_admit(RequestKind::Write).unwrap();
/// assert!(b.try_admit(RequestKind::Read).is_err()); // transaction full
/// b.release_write_data();       // write command issued
/// b.complete(RequestKind::Write); // write transaction retires
/// assert!(b.try_admit(RequestKind::Read).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadBuffers {
    transaction_capacity: usize,
    write_capacity: usize,
    transactions: usize,
    writes: usize,
}

impl ThreadBuffers {
    /// Creates a tracker with the given per-thread capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(transaction_capacity: usize, write_capacity: usize) -> Self {
        assert!(transaction_capacity > 0, "transaction capacity must be > 0");
        assert!(write_capacity > 0, "write capacity must be > 0");
        ThreadBuffers {
            transaction_capacity,
            write_capacity,
            transactions: 0,
            writes: 0,
        }
    }

    /// The paper's Table 5 partition: 16 transaction entries and 8 write
    /// entries per thread.
    pub fn paper() -> Self {
        ThreadBuffers::new(16, 8)
    }

    /// Current transaction-buffer occupancy.
    pub fn transactions_used(&self) -> usize {
        self.transactions
    }

    /// Current write-buffer occupancy.
    pub fn writes_used(&self) -> usize {
        self.writes
    }

    /// True if a request of `kind` would currently be admitted.
    pub fn can_admit(&self, kind: RequestKind) -> bool {
        if self.transactions >= self.transaction_capacity {
            return false;
        }
        if kind == RequestKind::Write && self.writes >= self.write_capacity {
            return false;
        }
        true
    }

    /// Attempts to admit a request, reserving buffer entries.
    ///
    /// # Errors
    ///
    /// Returns the [`Nack`] back-pressure signal if the thread's partition
    /// is full; the caller (the processor's cache hierarchy) must retry
    /// later.
    pub fn try_admit(&mut self, kind: RequestKind) -> Result<(), Nack> {
        if self.transactions >= self.transaction_capacity {
            return Err(Nack::TransactionBufferFull);
        }
        if kind == RequestKind::Write && self.writes >= self.write_capacity {
            return Err(Nack::WriteBufferFull);
        }
        self.transactions += 1;
        if kind == RequestKind::Write {
            self.writes += 1;
        }
        Ok(())
    }

    /// Admits a request unconditionally (shared-pool mode: the pool-level
    /// capacity check has already been performed by the controller).
    pub fn force_admit(&mut self, kind: RequestKind) {
        self.transactions += 1;
        if kind == RequestKind::Write {
            self.writes += 1;
        }
    }

    /// Releases the write-data entry when the write command has issued to
    /// the SDRAM (the line data has left the controller).
    ///
    /// # Panics
    ///
    /// Panics if no write entry is outstanding.
    pub fn release_write_data(&mut self) {
        assert!(self.writes > 0, "write buffer underflow");
        self.writes -= 1;
    }

    /// Retires a completed transaction of `kind`, freeing its
    /// transaction-buffer entry.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is outstanding.
    pub fn complete(&mut self, _kind: RequestKind) {
        assert!(self.transactions > 0, "transaction buffer underflow");
        self.transactions -= 1;
    }
}

/// Capacities are configuration (validated against the restore target);
/// only the occupancy counters are state. Shared-pool mode can legitimately
/// push a thread's occupancy past its nominal partition, so occupancy is
/// not bounds-checked against the capacities here.
impl Snapshot for ThreadBuffers {
    fn save(&self, w: &mut SectionWriter) {
        w.put_usize(self.transaction_capacity);
        w.put_usize(self.write_capacity);
        w.put_usize(self.transactions);
        w.put_usize(self.writes);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let tx_cap = r.get_usize()?;
        let wr_cap = r.get_usize()?;
        if tx_cap != self.transaction_capacity || wr_cap != self.write_capacity {
            return Err(r.malformed(format!(
                "buffer capacities {tx_cap}/{wr_cap} != configured {}/{}",
                self.transaction_capacity, self.write_capacity
            )));
        }
        self.transactions = r.get_usize()?;
        self.writes = r.get_usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities() {
        let b = ThreadBuffers::paper();
        assert!(b.can_admit(RequestKind::Read));
        let mut b = b;
        for _ in 0..16 {
            b.try_admit(RequestKind::Read).unwrap();
        }
        assert_eq!(
            b.try_admit(RequestKind::Read),
            Err(Nack::TransactionBufferFull)
        );
    }

    #[test]
    fn write_partition_is_tighter() {
        let mut b = ThreadBuffers::paper();
        for _ in 0..8 {
            b.try_admit(RequestKind::Write).unwrap();
        }
        assert_eq!(b.try_admit(RequestKind::Write), Err(Nack::WriteBufferFull));
        // Reads still admitted: transaction buffer has room.
        assert!(b.try_admit(RequestKind::Read).is_ok());
    }

    #[test]
    fn write_lifecycle_frees_both_entries() {
        let mut b = ThreadBuffers::new(1, 1);
        b.try_admit(RequestKind::Write).unwrap();
        assert!(!b.can_admit(RequestKind::Read));
        b.release_write_data();
        // Data left, but the transaction entry is still held.
        assert!(!b.can_admit(RequestKind::Read));
        b.complete(RequestKind::Write);
        assert!(b.can_admit(RequestKind::Write));
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = ThreadBuffers::new(1, 1);
        b.complete(RequestKind::Read);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = ThreadBuffers::new(0, 1);
    }
}
