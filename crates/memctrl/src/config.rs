//! Memory-controller configuration.

use crate::policy::{
    BufferSharing, InversionBound, RefreshPolicy, RowPolicy, SchedulerKind, VftBinding,
};

/// Configuration of a [`crate::controller::MemoryController`].
///
/// # Example
///
/// ```
/// use fqms_memctrl::config::McConfig;
/// use fqms_memctrl::policy::SchedulerKind;
///
/// let cfg = McConfig::paper(2, SchedulerKind::FqVftf);
/// assert_eq!(cfg.shares, vec![0.5, 0.5]);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Per-thread service shares `phi_i`; must each lie in `(0, 1]` and sum
    /// to at most 1 (the EDF schedulability condition the paper invokes).
    pub shares: Vec<f64>,
    /// Transaction-buffer entries per thread (paper: 16).
    pub transaction_entries: usize,
    /// Write-buffer entries per thread (paper: 8).
    pub write_entries: usize,
    /// The FQ bank scheduler's priority-inversion bound `x` (paper: tRAS).
    pub inversion_bound: InversionBound,
    /// Row-buffer management policy (paper: closed).
    pub row_policy: RowPolicy,
    /// When virtual finish times are bound (paper: at first-ready).
    pub vft_binding: VftBinding,
    /// Refresh scheduling policy (default: strict).
    pub refresh_policy: RefreshPolicy,
    /// Buffer organisation (default: the paper's static partitions).
    pub buffer_sharing: BufferSharing,
    /// Cache-line size in bytes (paper: 64).
    pub line_bytes: u64,
    /// Starvation-watchdog threshold in DRAM cycles: if a thread with
    /// pending work completes nothing for this many cycles, the controller
    /// emits a `StarvationDetected` observability event and counts it — it
    /// never alters scheduling. `None` (the default) disables the
    /// watchdog.
    pub starvation_threshold: Option<u64>,
}

impl McConfig {
    /// The paper's Table 5 controller configuration for `num_threads`
    /// processors with *equal, static* shares (`phi = 1/n`).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn paper(num_threads: usize, scheduler: SchedulerKind) -> Self {
        assert!(num_threads > 0, "need at least one thread");
        McConfig {
            scheduler,
            shares: vec![1.0 / num_threads as f64; num_threads],
            transaction_entries: 16,
            write_entries: 8,
            inversion_bound: InversionBound::TRas,
            row_policy: RowPolicy::Closed,
            vft_binding: VftBinding::FirstReady,
            refresh_policy: RefreshPolicy::Strict,
            buffer_sharing: BufferSharing::Partitioned,
            line_bytes: 64,
            starvation_threshold: None,
        }
    }

    /// Same as [`McConfig::paper`] but with explicit (possibly unequal)
    /// shares.
    pub fn with_shares(scheduler: SchedulerKind, shares: Vec<f64>) -> Self {
        McConfig {
            scheduler,
            shares,
            transaction_entries: 16,
            write_entries: 8,
            inversion_bound: InversionBound::TRas,
            row_policy: RowPolicy::Closed,
            vft_binding: VftBinding::FirstReady,
            refresh_policy: RefreshPolicy::Strict,
            buffer_sharing: BufferSharing::Partitioned,
            line_bytes: 64,
            starvation_threshold: None,
        }
    }

    /// Number of hardware threads the controller supports.
    pub fn num_threads(&self) -> usize {
        self.shares.len()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description if there are no threads, any share is outside
    /// `(0, 1]`, the shares sum to more than 1 (beyond rounding slack), or
    /// a buffer capacity is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.shares.is_empty() {
            return Err("at least one thread share is required".into());
        }
        for (i, &phi) in self.shares.iter().enumerate() {
            if !(phi > 0.0 && phi <= 1.0) {
                return Err(format!("share for thread {i} must be in (0, 1], got {phi}"));
            }
        }
        let sum: f64 = self.shares.iter().sum();
        if sum > 1.0 + 1e-9 {
            return Err(format!("shares sum to {sum}, exceeding the memory system"));
        }
        if self.transaction_entries == 0 || self.write_entries == 0 {
            return Err("buffer capacities must be positive".into());
        }
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 8 {
            return Err(format!(
                "line_bytes must be a power of two >= 8, got {}",
                self.line_bytes
            ));
        }
        if self.starvation_threshold == Some(0) {
            return Err("starvation_threshold must be positive (or None to disable)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        for n in 1..=8 {
            McConfig::paper(n, SchedulerKind::FqVftf)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn oversubscribed_shares_rejected() {
        let cfg = McConfig::with_shares(SchedulerKind::FqVftf, vec![0.6, 0.6]);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_share_rejected() {
        let cfg = McConfig::with_shares(SchedulerKind::FqVftf, vec![0.0, 0.5]);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn unequal_shares_allowed() {
        let cfg = McConfig::with_shares(SchedulerKind::FqVftf, vec![0.75, 0.25]);
        cfg.validate().unwrap();
        assert_eq!(cfg.num_threads(), 2);
    }

    #[test]
    fn empty_shares_rejected() {
        let cfg = McConfig::with_shares(SchedulerKind::FrFcfs, vec![]);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_watchdog_threshold_rejected() {
        let mut cfg = McConfig::paper(2, SchedulerKind::FqVftf);
        cfg.starvation_threshold = Some(0);
        assert!(cfg.validate().is_err());
        cfg.starvation_threshold = Some(10_000);
        cfg.validate().unwrap();
    }

    #[test]
    fn bad_line_size_rejected() {
        let mut cfg = McConfig::paper(2, SchedulerKind::FrFcfs);
        cfg.line_bytes = 48;
        assert!(cfg.validate().is_err());
    }
}
