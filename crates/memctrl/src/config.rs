//! Memory-controller configuration, including the two-level share tree
//! for hierarchical phi allocations (ISSUE 6).

use crate::policy::{
    BufferSharing, InversionBound, RefreshPolicy, RowPolicy, ScanKind, SchedulerKind, VftBinding,
};

/// Typed error for a scheduler/scan-kind combination the controller
/// cannot honour (ISSUE 7): BLISS mutates request *ordering* (the
/// blacklist tier) between scheduling decisions, which the static-key
/// indexed scan cannot represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedScanError {
    /// The offending scheduler.
    pub scheduler: SchedulerKind,
    /// The scan kind it cannot run under.
    pub scan: ScanKind,
}

impl std::fmt::Display for UnsupportedScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheduler {} does not support ScanKind::{:?}; use ScanKind::Linear",
            self.scheduler, self.scan
        )
    }
}

impl std::error::Error for UnsupportedScanError {}

/// One tenant in a two-level share tree: a fraction of the whole memory
/// system, subdivided among the tenant's member threads by relative
/// weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// The tenant's share of the memory system; must lie in `(0, 1]`.
    pub share: f64,
    /// Relative (positive) weights of the tenant's member threads. The
    /// tenant owns `weights.len()` consecutive threads.
    pub weights: Vec<f64>,
}

impl TenantSpec {
    /// A tenant whose `n` threads split its share equally.
    pub fn equal(share: f64, n: usize) -> Self {
        TenantSpec {
            share,
            weights: vec![1.0; n],
        }
    }
}

/// A two-level tenant → thread share tree.
///
/// Tenants own consecutive thread-id ranges in declaration order:
/// tenant 0 owns threads `0..tenants[0].weights.len()`, tenant 1 the
/// next block, and so on. Each thread's **effective share** is its
/// tenant's system share multiplied by the thread's normalized weight
/// within the tenant:
///
/// ```text
/// phi_t = tenant.share * w_t / sum(tenant.weights)
/// ```
///
/// Effective shares sum (up to rounding) to the sum of tenant shares, so
/// the flat EDF schedulability condition (`sum phi <= 1`) carries over
/// unchanged and the existing per-thread VTMS machinery implements the
/// hierarchy exactly under full backlog (see DESIGN.md §15 for the GPS
/// equivalence argument and its idle-tenant limitation).
///
/// # Example
///
/// ```
/// use fqms_memctrl::config::{ShareTree, TenantSpec};
///
/// let tree = ShareTree {
///     tenants: vec![
///         TenantSpec { share: 0.5, weights: vec![3.0, 1.0] },
///         TenantSpec::equal(0.5, 2),
///     ],
/// };
/// tree.validate().unwrap();
/// assert_eq!(tree.num_threads(), 4);
/// assert_eq!(tree.effective_shares(), vec![0.375, 0.125, 0.25, 0.25]);
/// assert_eq!(tree.tenant_of(1), 0);
/// assert_eq!(tree.tenant_of(2), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShareTree {
    /// The tenants, in thread order.
    pub tenants: Vec<TenantSpec>,
}

impl ShareTree {
    /// A tree of `tenants` equal-share tenants with `threads_per_tenant`
    /// equal-weight threads each (the symmetric scaling configuration).
    pub fn symmetric(tenants: usize, threads_per_tenant: usize) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        ShareTree {
            tenants: vec![TenantSpec::equal(1.0 / tenants as f64, threads_per_tenant); tenants],
        }
    }

    /// Number of tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Total number of threads across all tenants.
    pub fn num_threads(&self) -> usize {
        self.tenants.iter().map(|t| t.weights.len()).sum()
    }

    /// The tenant owning `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn tenant_of(&self, thread: usize) -> usize {
        let mut base = 0;
        for (i, t) in self.tenants.iter().enumerate() {
            base += t.weights.len();
            if thread < base {
                return i;
            }
        }
        panic!("thread {thread} beyond the tree's {base} threads");
    }

    /// The consecutive thread-id range tenant `tenant` owns.
    pub fn tenant_threads(&self, tenant: usize) -> std::ops::Range<usize> {
        let base: usize = self.tenants[..tenant].iter().map(|t| t.weights.len()).sum();
        base..base + self.tenants[tenant].weights.len()
    }

    /// Flattens the tree to per-thread effective shares
    /// (`phi_t = tenant.share * w_t / sum(tenant.weights)`).
    pub fn effective_shares(&self) -> Vec<f64> {
        let mut shares = Vec::with_capacity(self.num_threads());
        for t in &self.tenants {
            let total: f64 = t.weights.iter().sum();
            shares.extend(t.weights.iter().map(|w| t.share * w / total));
        }
        shares
    }

    /// Validates the tree shape.
    ///
    /// # Errors
    ///
    /// Returns a description if there are no tenants, a tenant has no
    /// threads, a tenant share is outside `(0, 1]`, tenant shares sum to
    /// more than 1 (beyond rounding slack), or a weight is not positive
    /// and finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("share tree needs at least one tenant".into());
        }
        let mut sum = 0.0;
        for (i, t) in self.tenants.iter().enumerate() {
            if !(t.share > 0.0 && t.share <= 1.0) {
                return Err(format!(
                    "tenant {i} share must be in (0, 1], got {}",
                    t.share
                ));
            }
            if t.weights.is_empty() {
                return Err(format!("tenant {i} has no threads"));
            }
            for (j, &w) in t.weights.iter().enumerate() {
                if !(w > 0.0 && w.is_finite()) {
                    return Err(format!(
                        "tenant {i} thread {j} weight must be positive, got {w}"
                    ));
                }
            }
            sum += t.share;
        }
        if sum > 1.0 + 1e-9 {
            return Err(format!(
                "tenant shares sum to {sum}, exceeding the memory system"
            ));
        }
        Ok(())
    }
}

/// One thread's class under real-time regulation (ISSUE 9): whether it
/// is a real-time thread, its per-period service budget, and its
/// (optional) analytic WCET bound for violation accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSpec {
    /// Real-time thread: holds the premium scheduling tier while in
    /// budget. Best-effort threads always run on the demoted tier.
    pub rt: bool,
    /// Bank services (CAS issues) allowed per replenish period. A
    /// zero-budget real-time class is permanently demoted — pure
    /// best-effort behaviour, useful as a regression anchor.
    pub budget: u64,
    /// Analytic worst-case latency bound in DRAM cycles (from
    /// [`crate::wcet::bound_for`]); when set, completions above it are
    /// counted ([`crate::regulate::RegulatorState::bound_violations`])
    /// and emitted as `BoundExceeded` observability events. Only valid
    /// on real-time classes.
    pub wcet: Option<u64>,
}

/// Real-time regulation knob for [`McConfig::regulation`] (ISSUE 9):
/// per-thread bank partitioning plus token-bucket bandwidth budgets,
/// composing with any VFT-based scheduler (the verified configuration is
/// FQ-VFTF). Build with the chained constructor, one class per thread in
/// thread order:
///
/// ```
/// use fqms_memctrl::config::{McConfig, RegulationConfig};
/// use fqms_memctrl::policy::{ScanKind, SchedulerKind};
///
/// let cfg = McConfig::paper(3, SchedulerKind::FqVftf).with_regulation(
///     RegulationConfig::new(10_000) // replenish period, DRAM cycles
///         .rt_class(8, None)        // thread 0: 8 services per period
///         .best_effort()            // threads 1-2: unregulated
///         .best_effort(),
/// );
/// cfg.validate().unwrap();
/// // Dynamic tiers are a linear-scan feature; the builder downgrades.
/// assert_eq!(cfg.scan, ScanKind::Linear);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegulationConfig {
    /// Token-bucket replenish period in DRAM cycles.
    pub period: u64,
    /// Remap each thread's requests into a private contiguous slice of
    /// the global bank space ([`fqms_dram::device::Geometry::partition_slice`]).
    /// Required for the analytic WCET bound to hold; disable only for
    /// regulation-in-isolation studies.
    pub partition: bool,
    /// One class per thread, in thread order; length must equal the
    /// controller's thread count.
    pub classes: Vec<ClassSpec>,
}

impl RegulationConfig {
    /// An empty regulation config with the given replenish period and
    /// partitioning on; chain [`RegulationConfig::rt_class`] /
    /// [`RegulationConfig::best_effort`] once per thread.
    pub fn new(period: u64) -> Self {
        RegulationConfig {
            period,
            partition: true,
            classes: Vec::new(),
        }
    }

    /// Appends a real-time class with `budget` services per period and
    /// an optional analytic WCET bound.
    pub fn rt_class(mut self, budget: u64, wcet: Option<u64>) -> Self {
        self.classes.push(ClassSpec {
            rt: true,
            budget,
            wcet,
        });
        self
    }

    /// Appends an unregulated best-effort class.
    pub fn best_effort(mut self) -> Self {
        self.classes.push(ClassSpec {
            rt: false,
            budget: 0,
            wcet: None,
        });
        self
    }

    /// Sets whether bank partitioning is applied (default: on).
    pub fn partitioned(mut self, on: bool) -> Self {
        self.partition = on;
        self
    }

    /// Validates the regulation shape against a thread count.
    ///
    /// # Errors
    ///
    /// Returns a description if the period is zero, the class count
    /// disagrees with `num_threads`, a WCET bound is zero or attached to
    /// a best-effort class.
    pub fn validate(&self, num_threads: usize) -> Result<(), String> {
        if self.period == 0 {
            return Err("regulation period must be positive".into());
        }
        if self.classes.len() != num_threads {
            return Err(format!(
                "regulation declares {} classes for {num_threads} threads",
                self.classes.len()
            ));
        }
        for (i, c) in self.classes.iter().enumerate() {
            match c.wcet {
                Some(0) => {
                    return Err(format!("class {i}: wcet bound must be positive"));
                }
                Some(_) if !c.rt => {
                    return Err(format!("class {i}: wcet bound requires a real-time class"));
                }
                _ => {}
            }
            if !c.rt && c.budget != 0 {
                return Err(format!(
                    "class {i}: best-effort classes carry no budget, got {}",
                    c.budget
                ));
            }
        }
        Ok(())
    }
}

/// Admission-throttle knob for [`OverloadConfig`] (ISSUE 10): a
/// per-thread token bucket driven by the online slowdown estimate.
///
/// At every replenish boundary the controller reclassifies threads: a
/// thread is a **bandwidth hog** when the worst per-thread slowdown in
/// the system is at least `margin` times its own (hogs run close to
/// their alone speed precisely because they crowd everyone else out).
/// Hogs are token-gated — at most `tokens` admissions per `period` —
/// and refused with [`crate::buffers::Nack::Throttled`] once exhausted.
/// Non-hog and protected threads are never gated.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottleConfig {
    /// Token replenish period in DRAM cycles.
    pub period: u64,
    /// Admissions allowed per period while classified a hog (0 gates the
    /// hog completely until the next boundary).
    pub tokens: u64,
    /// Hog-classification ratio: thread `t` is a hog when
    /// `max_slowdown >= margin * slowdown(t)`. Must be at least 1.0;
    /// larger margins throttle fewer threads.
    pub margin: f64,
}

/// Tiered load-shedding knob for [`OverloadConfig`] (ISSUE 10): a
/// saturation detector with hysteresis over buffer occupancy and
/// buffer-full NACK rate.
///
/// At every `window` boundary the controller inspects the occupied
/// transaction-buffer entries and the buffer-full NACKs observed during
/// the window, then moves **one level** along the ladder
/// `Normal → Degraded → Shedding`:
///
/// * escalate when `occupied >= occupancy_enter` **or**
///   `window nacks >= nack_enter`,
/// * de-escalate when `occupied < occupancy_exit` **and**
///   `window nacks < nack_exit`.
///
/// Exit thresholds must sit strictly below their enter counterparts, so
/// a system hovering at the boundary cannot flap. `Degraded` sheds
/// best-effort writebacks; `Shedding` sheds all best-effort requests
/// ([`crate::buffers::ShedClass`]). Only buffer-full NACKs count toward
/// the detector — the shedder's own refusals never feed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedConfig {
    /// Detector evaluation window in DRAM cycles.
    pub window: u64,
    /// Escalate at a boundary when this many transaction-buffer entries
    /// are occupied.
    pub occupancy_enter: usize,
    /// De-escalation requires occupancy strictly below this (must be
    /// `< occupancy_enter`).
    pub occupancy_exit: usize,
    /// Escalate at a boundary when the window saw this many buffer-full
    /// NACKs.
    pub nack_enter: u64,
    /// De-escalation requires window NACKs strictly below this (must be
    /// `< nack_enter`).
    pub nack_exit: u64,
}

/// Overload-control knob for [`McConfig::overload`] (ISSUE 10): a
/// deterministic admission-side control layer — slowdown-feedback
/// throttling of bandwidth hogs plus tiered load shedding under
/// saturation — acting *before* the scheduler ever sees a request.
/// Orthogonal to the scheduler family and to real-time regulation
/// (threads in a real-time class are automatically protected).
///
/// ```
/// use fqms_memctrl::config::{McConfig, OverloadConfig};
/// use fqms_memctrl::policy::SchedulerKind;
///
/// let cfg = McConfig::paper(3, SchedulerKind::FqVftf).with_overload(
///     OverloadConfig::new(3)          // one entry per thread
///         .throttled(2_000, 8, 2.0)   // hogs: 8 admissions / 2000 cycles
///         .shedding(1_000, 40, 24, 64, 16)
///         .protect(0),                // thread 0 is never gated or shed
/// );
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadConfig {
    /// Slowdown-feedback admission throttle; `None` disables throttling.
    pub throttle: Option<ThrottleConfig>,
    /// Tiered load shedding; `None` disables shedding.
    pub shed: Option<ShedConfig>,
    /// Per-thread protection flags (length must equal the thread count):
    /// protected threads are never classified as hogs and never shed.
    /// Real-time regulated threads are protected implicitly.
    pub protected: Vec<bool>,
}

impl OverloadConfig {
    /// An inert overload config for `num_threads` threads: no throttle,
    /// no shedding, nothing protected. Chain [`OverloadConfig::throttled`]
    /// and/or [`OverloadConfig::shedding`] to arm it.
    pub fn new(num_threads: usize) -> Self {
        OverloadConfig {
            throttle: None,
            shed: None,
            protected: vec![false; num_threads],
        }
    }

    /// Arms the admission throttle: hog threads get `tokens` admissions
    /// per `period` cycles; hogs are threads whose slowdown estimate is
    /// `margin` times below the worst in the system.
    pub fn throttled(mut self, period: u64, tokens: u64, margin: f64) -> Self {
        self.throttle = Some(ThrottleConfig {
            period,
            tokens,
            margin,
        });
        self
    }

    /// Arms tiered load shedding with the given detector window and
    /// hysteresis thresholds (see [`ShedConfig`] for the semantics).
    pub fn shedding(
        mut self,
        window: u64,
        occupancy_enter: usize,
        occupancy_exit: usize,
        nack_enter: u64,
        nack_exit: u64,
    ) -> Self {
        self.shed = Some(ShedConfig {
            window,
            occupancy_enter,
            occupancy_exit,
            nack_enter,
            nack_exit,
        });
        self
    }

    /// Marks `thread` as protected: never throttled, never shed.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range for the configured count.
    pub fn protect(mut self, thread: usize) -> Self {
        self.protected[thread] = true;
        self
    }

    /// Validates the overload shape against a thread count.
    ///
    /// # Errors
    ///
    /// Returns a description if neither mechanism is armed, the flag
    /// count disagrees with `num_threads`, a period or window is zero,
    /// the margin is below 1.0 or not finite, or a hysteresis exit
    /// threshold is not strictly below its enter threshold.
    pub fn validate(&self, num_threads: usize) -> Result<(), String> {
        if self.throttle.is_none() && self.shed.is_none() {
            return Err("overload config arms neither throttle nor shedding".into());
        }
        if self.protected.len() != num_threads {
            return Err(format!(
                "overload declares {} protection flags for {num_threads} threads",
                self.protected.len()
            ));
        }
        if let Some(t) = &self.throttle {
            if t.period == 0 {
                return Err("throttle period must be positive".into());
            }
            if !(t.margin.is_finite() && t.margin >= 1.0) {
                return Err(format!(
                    "throttle margin must be finite and >= 1.0, got {}",
                    t.margin
                ));
            }
        }
        if let Some(s) = &self.shed {
            if s.window == 0 {
                return Err("shed window must be positive".into());
            }
            if s.occupancy_exit >= s.occupancy_enter {
                return Err(format!(
                    "shed occupancy hysteresis requires exit < enter, got {} >= {}",
                    s.occupancy_exit, s.occupancy_enter
                ));
            }
            if s.nack_exit >= s.nack_enter {
                return Err(format!(
                    "shed NACK hysteresis requires exit < enter, got {} >= {}",
                    s.nack_exit, s.nack_enter
                ));
            }
        }
        Ok(())
    }
}

/// Configuration of a [`crate::controller::MemoryController`].
///
/// # Example
///
/// ```
/// use fqms_memctrl::config::McConfig;
/// use fqms_memctrl::policy::SchedulerKind;
///
/// let cfg = McConfig::paper(2, SchedulerKind::FqVftf);
/// assert_eq!(cfg.shares, vec![0.5, 0.5]);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Per-thread service shares `phi_i`; must each lie in `(0, 1]` and sum
    /// to at most 1 (the EDF schedulability condition the paper invokes).
    pub shares: Vec<f64>,
    /// Optional two-level tenant → thread share tree. When present,
    /// `shares` must equal `share_tree.effective_shares()` bit-for-bit
    /// (use [`McConfig::hierarchical`], which derives one from the
    /// other); the tree additionally labels threads with tenants for
    /// per-tenant accounting ([`crate::stats::McStats::tenant_totals`]).
    pub share_tree: Option<ShareTree>,
    /// Bank-scheduler selection implementation (default: indexed). The
    /// linear reference is retained for differential testing and the
    /// scaling figure's baseline.
    pub scan: ScanKind,
    /// Transaction-buffer entries per thread (paper: 16).
    pub transaction_entries: usize,
    /// Write-buffer entries per thread (paper: 8).
    pub write_entries: usize,
    /// The FQ bank scheduler's priority-inversion bound `x` (paper: tRAS).
    pub inversion_bound: InversionBound,
    /// Row-buffer management policy (paper: closed).
    pub row_policy: RowPolicy,
    /// When virtual finish times are bound (paper: at first-ready).
    pub vft_binding: VftBinding,
    /// Refresh scheduling policy (default: strict).
    pub refresh_policy: RefreshPolicy,
    /// Buffer organisation (default: the paper's static partitions).
    pub buffer_sharing: BufferSharing,
    /// Cache-line size in bytes (paper: 64).
    pub line_bytes: u64,
    /// Starvation-watchdog threshold in DRAM cycles: if a thread with
    /// pending work completes nothing for this many cycles, the controller
    /// emits a `StarvationDetected` observability event and counts it — it
    /// never alters scheduling. `None` (the default) disables the
    /// watchdog.
    pub starvation_threshold: Option<u64>,
    /// BLISS: number of *consecutive* bank services after which a thread
    /// is blacklisted (BLISS paper default: 4). Ignored by other
    /// schedulers.
    pub bliss_threshold: u32,
    /// BLISS: period in DRAM cycles at which all blacklist flags and the
    /// streak counter are cleared (BLISS paper: 10000). Ignored by other
    /// schedulers.
    pub bliss_clear_interval: u64,
    /// Real-time mode (ISSUE 9): per-thread bank partitioning plus
    /// token-bucket bandwidth regulation, prioritizing in-budget
    /// real-time requests over best-effort traffic. `None` (the
    /// default) disables regulation entirely. Requires
    /// [`ScanKind::Linear`] (dynamic tiers, like BLISS's) and is
    /// mutually exclusive with [`SchedulerKind::Bliss`], whose blacklist
    /// would fight the regulator for the tier bit. Set via
    /// [`McConfig::with_regulation`], which downgrades the scan kind
    /// automatically.
    pub regulation: Option<RegulationConfig>,
    /// Overload control (ISSUE 10): slowdown-feedback admission
    /// throttling plus tiered load shedding in front of the scheduler.
    /// `None` (the default) disables the layer entirely — the admission
    /// path is then bit-identical to a controller built before the layer
    /// existed. Composes with every scheduler and with regulation
    /// (real-time classes are implicitly protected). Set via
    /// [`McConfig::with_overload`].
    pub overload: Option<OverloadConfig>,
}

impl McConfig {
    /// The paper's Table 5 controller configuration for `num_threads`
    /// processors with *equal, static* shares (`phi = 1/n`).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn paper(num_threads: usize, scheduler: SchedulerKind) -> Self {
        assert!(num_threads > 0, "need at least one thread");
        Self::with_shares(scheduler, vec![1.0 / num_threads as f64; num_threads])
    }

    /// Same as [`McConfig::paper`] but with explicit (possibly unequal)
    /// shares.
    pub fn with_shares(scheduler: SchedulerKind, shares: Vec<f64>) -> Self {
        McConfig {
            scheduler,
            shares,
            share_tree: None,
            scan: Self::default_scan(scheduler),
            transaction_entries: 16,
            write_entries: 8,
            inversion_bound: InversionBound::TRas,
            row_policy: RowPolicy::Closed,
            vft_binding: VftBinding::FirstReady,
            refresh_policy: RefreshPolicy::Strict,
            buffer_sharing: BufferSharing::Partitioned,
            line_bytes: 64,
            starvation_threshold: None,
            bliss_threshold: 4,
            bliss_clear_interval: 10_000,
            regulation: None,
            overload: None,
        }
    }

    /// Enables real-time regulation, downgrading `scan` to
    /// [`ScanKind::Linear`] (the tier bit regulation drives is a
    /// linear-scan feature; the indexed path bakes static keys). See
    /// [`RegulationConfig`] for an example.
    pub fn with_regulation(mut self, regulation: RegulationConfig) -> Self {
        self.regulation = Some(regulation);
        self.scan = ScanKind::Linear;
        self
    }

    /// Enables overload control (admission throttling and/or tiered
    /// load shedding). Unlike regulation this is scan-kind agnostic:
    /// the layer acts purely at admission and never touches the
    /// scheduling tier. See [`OverloadConfig`] for an example.
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = Some(overload);
        self
    }

    /// The widest scan kind `scheduler` supports: indexed for everything
    /// except BLISS, which is linear-only (see
    /// [`SchedulerKind::supports_indexed_scan`]).
    pub fn default_scan(scheduler: SchedulerKind) -> ScanKind {
        if scheduler.supports_indexed_scan() {
            ScanKind::Indexed
        } else {
            ScanKind::Linear
        }
    }

    /// Sets the scheduler, downgrading `scan` to [`ScanKind::Linear`] when
    /// the new scheduler does not support the indexed path. Sweeps that
    /// mutate `scheduler` on a prebuilt config should use this instead of
    /// direct field assignment so BLISS never trips
    /// [`McConfig::validate_scan`].
    pub fn set_scheduler(&mut self, scheduler: SchedulerKind) {
        self.scheduler = scheduler;
        if !scheduler.supports_indexed_scan() && self.scan == ScanKind::Indexed {
            self.scan = ScanKind::Linear;
        }
    }

    /// Checks the scheduler/scan-kind combination.
    ///
    /// # Errors
    ///
    /// Returns a typed [`UnsupportedScanError`] when the configured
    /// scheduler cannot run under the configured scan kind (currently:
    /// BLISS with [`ScanKind::Indexed`]).
    pub fn validate_scan(&self) -> Result<(), UnsupportedScanError> {
        if self.scan == ScanKind::Indexed && !self.scheduler.supports_indexed_scan() {
            return Err(UnsupportedScanError {
                scheduler: self.scheduler,
                scan: self.scan,
            });
        }
        Ok(())
    }

    /// The paper configuration with hierarchical shares: per-thread
    /// `phi` values are derived from the tree's effective shares.
    ///
    /// # Panics
    ///
    /// Panics if the tree is invalid (construct and
    /// [`ShareTree::validate`] explicitly to handle errors).
    pub fn hierarchical(scheduler: SchedulerKind, tree: ShareTree) -> Self {
        tree.validate().expect("invalid share tree");
        let mut cfg = Self::with_shares(scheduler, tree.effective_shares());
        cfg.share_tree = Some(tree);
        cfg
    }

    /// Number of hardware threads the controller supports.
    pub fn num_threads(&self) -> usize {
        self.shares.len()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description if there are no threads, any share is outside
    /// `(0, 1]`, the shares sum to more than 1 (beyond rounding slack), a
    /// buffer capacity is zero, or the share tree (when present) is
    /// invalid or inconsistent with `shares`.
    pub fn validate(&self) -> Result<(), String> {
        if self.shares.is_empty() {
            return Err("at least one thread share is required".into());
        }
        for (i, &phi) in self.shares.iter().enumerate() {
            if !(phi > 0.0 && phi <= 1.0) {
                return Err(format!("share for thread {i} must be in (0, 1], got {phi}"));
            }
        }
        let sum: f64 = self.shares.iter().sum();
        if sum > 1.0 + 1e-9 {
            return Err(format!("shares sum to {sum}, exceeding the memory system"));
        }
        if let Some(tree) = &self.share_tree {
            tree.validate()?;
            let effective = tree.effective_shares();
            // Bit-equality, not tolerance: `shares` drive the VTMS
            // arithmetic and the snapshot fingerprint; a tree that merely
            // approximates them would silently shift virtual time.
            if effective.len() != self.shares.len()
                || effective
                    .iter()
                    .zip(&self.shares)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                return Err("share_tree effective shares disagree with flat shares \
                     (build via McConfig::hierarchical)"
                    .into());
            }
        }
        if self.transaction_entries == 0 || self.write_entries == 0 {
            return Err("buffer capacities must be positive".into());
        }
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 8 {
            return Err(format!(
                "line_bytes must be a power of two >= 8, got {}",
                self.line_bytes
            ));
        }
        if self.starvation_threshold == Some(0) {
            return Err("starvation_threshold must be positive (or None to disable)".into());
        }
        self.validate_scan().map_err(|e| e.to_string())?;
        if self.bliss_threshold == 0 {
            return Err("bliss_threshold must be positive".into());
        }
        if self.bliss_clear_interval == 0 {
            return Err("bliss_clear_interval must be positive".into());
        }
        if let Some(reg) = &self.regulation {
            reg.validate(self.shares.len())?;
            if self.scheduler == SchedulerKind::Bliss {
                return Err(
                    "regulation is mutually exclusive with SchedulerKind::Bliss \
                     (both drive the priority tier)"
                        .into(),
                );
            }
            if self.scan == ScanKind::Indexed {
                return Err(
                    "regulation requires ScanKind::Linear (use McConfig::with_regulation)".into(),
                );
            }
        }
        if let Some(overload) = &self.overload {
            overload.validate(self.shares.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        for n in 1..=8 {
            McConfig::paper(n, SchedulerKind::FqVftf)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn oversubscribed_shares_rejected() {
        let cfg = McConfig::with_shares(SchedulerKind::FqVftf, vec![0.6, 0.6]);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_share_rejected() {
        let cfg = McConfig::with_shares(SchedulerKind::FqVftf, vec![0.0, 0.5]);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn unequal_shares_allowed() {
        let cfg = McConfig::with_shares(SchedulerKind::FqVftf, vec![0.75, 0.25]);
        cfg.validate().unwrap();
        assert_eq!(cfg.num_threads(), 2);
    }

    #[test]
    fn empty_shares_rejected() {
        let cfg = McConfig::with_shares(SchedulerKind::FrFcfs, vec![]);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_watchdog_threshold_rejected() {
        let mut cfg = McConfig::paper(2, SchedulerKind::FqVftf);
        cfg.starvation_threshold = Some(0);
        assert!(cfg.validate().is_err());
        cfg.starvation_threshold = Some(10_000);
        cfg.validate().unwrap();
    }

    #[test]
    fn bliss_defaults_to_linear_scan_and_indexed_is_rejected() {
        let cfg = McConfig::paper(4, SchedulerKind::Bliss);
        assert_eq!(cfg.scan, ScanKind::Linear);
        cfg.validate().unwrap();

        let mut bad = cfg.clone();
        bad.scan = ScanKind::Indexed;
        let err = bad.validate_scan().unwrap_err();
        assert_eq!(err.scheduler, SchedulerKind::Bliss);
        assert_eq!(err.scan, ScanKind::Indexed);
        assert!(err.to_string().contains("BLISS"));
        assert!(bad.validate().is_err());

        // set_scheduler downgrades the scan instead of tripping validate.
        let mut swept = McConfig::paper(4, SchedulerKind::FqVftf);
        assert_eq!(swept.scan, ScanKind::Indexed);
        swept.set_scheduler(SchedulerKind::Bliss);
        assert_eq!(swept.scan, ScanKind::Linear);
        swept.validate().unwrap();
        // ... and leaves an explicit Linear choice alone for others.
        let mut linear = McConfig::paper(4, SchedulerKind::FqVftf);
        linear.scan = ScanKind::Linear;
        linear.set_scheduler(SchedulerKind::SdVftf);
        assert_eq!(linear.scan, ScanKind::Linear);
    }

    #[test]
    fn zero_bliss_knobs_rejected() {
        let mut cfg = McConfig::paper(2, SchedulerKind::Bliss);
        cfg.bliss_threshold = 0;
        assert!(cfg.validate().is_err());
        cfg.bliss_threshold = 4;
        cfg.bliss_clear_interval = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_line_size_rejected() {
        let mut cfg = McConfig::paper(2, SchedulerKind::FrFcfs);
        cfg.line_bytes = 48;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn hierarchical_config_derives_effective_shares() {
        let tree = ShareTree {
            tenants: vec![
                TenantSpec {
                    share: 0.5,
                    weights: vec![1.0, 1.0],
                },
                TenantSpec {
                    share: 0.25,
                    weights: vec![2.0, 1.0, 1.0],
                },
            ],
        };
        let cfg = McConfig::hierarchical(SchedulerKind::FqVftf, tree);
        cfg.validate().unwrap();
        assert_eq!(cfg.num_threads(), 5);
        assert_eq!(cfg.shares, vec![0.25, 0.25, 0.125, 0.0625, 0.0625]);
    }

    #[test]
    fn inconsistent_share_tree_rejected() {
        let mut cfg = McConfig::hierarchical(SchedulerKind::FqVftf, ShareTree::symmetric(2, 2));
        cfg.validate().unwrap();
        cfg.shares[0] += 1e-12; // drift: no longer the tree's flattening
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn share_tree_validation_rejects_bad_shapes() {
        assert!(ShareTree { tenants: vec![] }.validate().is_err());
        assert!(ShareTree {
            tenants: vec![TenantSpec::equal(0.5, 0)]
        }
        .validate()
        .is_err());
        assert!(ShareTree {
            tenants: vec![TenantSpec::equal(0.0, 2)]
        }
        .validate()
        .is_err());
        assert!(ShareTree {
            tenants: vec![TenantSpec::equal(0.7, 1), TenantSpec::equal(0.7, 1)]
        }
        .validate()
        .is_err());
        assert!(ShareTree {
            tenants: vec![TenantSpec {
                share: 0.5,
                weights: vec![1.0, -1.0],
            }]
        }
        .validate()
        .is_err());
        ShareTree::symmetric(64, 64).validate().unwrap();
    }

    fn rt_reg(period: u64) -> RegulationConfig {
        RegulationConfig::new(period)
            .rt_class(8, Some(4_000))
            .best_effort()
            .best_effort()
    }

    #[test]
    fn regulation_builder_downgrades_scan_and_validates() {
        let cfg = McConfig::paper(3, SchedulerKind::FqVftf).with_regulation(rt_reg(10_000));
        assert_eq!(cfg.scan, ScanKind::Linear);
        cfg.validate().unwrap();
        let reg = cfg.regulation.as_ref().unwrap();
        assert!(reg.partition);
        assert_eq!(reg.classes.len(), 3);
        assert!(reg.classes[0].rt && !reg.classes[1].rt);
    }

    #[test]
    fn regulation_rejects_indexed_scan_bliss_and_bad_shapes() {
        let mut cfg = McConfig::paper(3, SchedulerKind::FqVftf).with_regulation(rt_reg(10_000));
        cfg.scan = ScanKind::Indexed;
        assert!(cfg.validate().unwrap_err().contains("ScanKind::Linear"));

        let bliss = McConfig::paper(3, SchedulerKind::Bliss).with_regulation(rt_reg(10_000));
        assert!(bliss.validate().unwrap_err().contains("Bliss"));

        // Class count must match the thread count.
        let wide = McConfig::paper(4, SchedulerKind::FqVftf).with_regulation(rt_reg(10_000));
        assert!(wide.validate().is_err());

        // Period, zero-wcet, wcet-on-best-effort, budget-on-best-effort.
        assert!(rt_reg(0).validate(3).is_err());
        let zero_wcet = RegulationConfig::new(100).rt_class(1, Some(0));
        assert!(zero_wcet.validate(1).is_err());
        let be_wcet = RegulationConfig {
            period: 100,
            partition: true,
            classes: vec![ClassSpec {
                rt: false,
                budget: 0,
                wcet: Some(10),
            }],
        };
        assert!(be_wcet.validate(1).is_err());
        let be_budget = RegulationConfig {
            period: 100,
            partition: true,
            classes: vec![ClassSpec {
                rt: false,
                budget: 3,
                wcet: None,
            }],
        };
        assert!(be_budget.validate(1).is_err());

        // Zero-budget RT classes are explicitly allowed (pure demotion).
        RegulationConfig::new(100)
            .rt_class(0, None)
            .validate(1)
            .unwrap();
    }

    #[test]
    fn symmetric_tree_flattens_to_equal_shares() {
        let tree = ShareTree::symmetric(4, 16);
        assert_eq!(tree.num_threads(), 64);
        let shares = tree.effective_shares();
        assert!(shares.iter().all(|&s| (s - 1.0 / 64.0).abs() < 1e-15));
        assert_eq!(tree.tenant_of(0), 0);
        assert_eq!(tree.tenant_of(63), 3);
        assert_eq!(tree.tenant_threads(2), 32..48);
    }
}
