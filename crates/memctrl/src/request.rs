//! Memory requests as seen by the memory controller.

use fqms_dram::command::DramAddress;
use fqms_sim::clock::DramCycle;
use std::fmt;

/// Identifier of a hardware thread (one per processor in the paper's CMP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id from a raw index.
    pub const fn new(raw: u32) -> Self {
        ThreadId(raw)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The raw index as `usize` for array indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ThreadId {
    fn from(raw: u32) -> Self {
        ThreadId(raw)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Unique identifier assigned to each accepted memory request, in admission
/// order (so it doubles as an arrival tiebreaker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw sequence number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Whether a request reads a cache line from memory or writes one back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A cache-line fetch (demand miss); the requester waits for the data.
    Read,
    /// A dirty-line writeback; fire-and-forget once accepted.
    Write,
}

impl RequestKind {
    /// True for reads.
    pub fn is_read(self) -> bool {
        matches!(self, RequestKind::Read)
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestKind::Read => f.write_str("read"),
            RequestKind::Write => f.write_str("write"),
        }
    }
}

/// A memory request resident in the controller's transaction buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRequest {
    /// Unique admission-ordered id.
    pub id: RequestId,
    /// Originating hardware thread.
    pub thread: ThreadId,
    /// Read or write.
    pub kind: RequestKind,
    /// Decoded DRAM location.
    pub addr: DramAddress,
    /// Cycle the request arrived at the memory controller (the paper's
    /// `a_i^k`, on the real clock).
    pub arrival: DramCycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_round_trip() {
        let t = ThreadId::from(3u32);
        assert_eq!(t.as_u32(), 3);
        assert_eq!(t.as_usize(), 3);
        assert_eq!(t.to_string(), "T3");
    }

    #[test]
    fn request_ids_order_by_admission() {
        assert!(RequestId::new(1) < RequestId::new(2));
    }

    #[test]
    fn kind_predicates() {
        assert!(RequestKind::Read.is_read());
        assert!(!RequestKind::Write.is_read());
    }
}
