//! Sharded multi-channel simulation engine.
//!
//! Channels in a line-interleaved memory system share no state: each has
//! its own bank schedulers, VTMS bookkeeping, transaction buffers, and
//! command log, and a request touches exactly one channel. That makes the
//! channel the natural sharding boundary for parallel simulation. This
//! module pre-routes an *open-loop submission schedule* (a time-ordered
//! list of [`SubmitEvent`]s) onto per-channel [`ChannelShard`]s and drives
//! them with the free-running work-stealing executor from
//! [`fqms_sim::parallel`] — either serially ([`simulate_serial`]) or
//! across worker threads ([`simulate_parallel`]; a lockstep epoch-barrier
//! variant, [`simulate_parallel_lockstep`], is retained for differential
//! testing and overhead measurement). Checkpointed runs have parallel
//! counterparts too: [`simulate_parallel_checkpointed`] captures bytes
//! identical to [`simulate_serial_checkpointed`]'s, and
//! [`resume_parallel`] resumes them to a report bit-identical to the
//! uninterrupted serial run.
//!
//! # Determinism guarantee
//!
//! Each shard advances its own channel with the same single-threaded code
//! path in both modes, and shards never communicate, so the parallel run
//! produces **bit-identical** per-thread statistics, completions, and
//! command logs to the serial run — regardless of worker count, epoch
//! length, or OS scheduling. The merged [`EngineReport`] is assembled in
//! channel-index order, so it is deterministic too, and `assert_eq!`
//! between a serial and a parallel report is the equivalence test.
//!
//! # Example
//!
//! ```
//! use fqms_memctrl::engine::{simulate_parallel, simulate_serial, synthetic_workload, EngineSpec};
//!
//! let spec = EngineSpec::paper(4, 2); // 4 channels, 2 threads
//! let events = synthetic_workload(2, 2_000, 0.3, 42);
//! let serial = simulate_serial(&spec, &events).unwrap();
//! let parallel = simulate_parallel(&spec, &events, 4).unwrap();
//! assert_eq!(serial, parallel);
//! ```

use crate::address_map::AddressMap;
use crate::buffers::Nack;
use crate::cmdlog::CommandLog;
use crate::config::McConfig;
use crate::controller::{Completion, MemoryController};
use crate::multichannel::MultiChannelController;
use crate::policy::SchedulerKind;
use crate::request::{RequestKind, ThreadId};
use crate::stats::ThreadStats;
use fqms_dram::command::BankId;
use fqms_dram::command::{ColId, DramAddress, RankId, RowId};
use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_obs::{Event, NullObserver, Observations, Observer, TracingObserver};
use fqms_sim::clock::DramCycle;
use fqms_sim::fault::FaultPlan;
use fqms_sim::parallel::{for_each_shard, run_lockstep, run_parallel, run_serial, Shard};
use fqms_sim::rng::SimRng;
use fqms_sim::snapshot::{
    Fingerprint, SectionReader, SectionWriter, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter,
};
use std::collections::VecDeque;

/// One request in an open-loop submission schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitEvent {
    /// Earliest cycle the request may be submitted (it is retried every
    /// cycle after a NACK, head-of-line per channel).
    pub at: DramCycle,
    /// Originating thread.
    pub thread: ThreadId,
    /// Read or write.
    pub kind: RequestKind,
    /// System-wide physical address (the engine routes and localizes it).
    pub phys: u64,
}

/// Head-of-line retry policy at a channel's submission port.
///
/// [`RetryPolicy::immediate`] (the default) reproduces the engine's
/// historical behaviour bit-for-bit: a NACKed head is retried every cycle
/// forever. [`RetryPolicy::bounded`] adds graceful degradation under
/// persistent back-pressure (e.g. a NACK-storm fault): retries back off
/// exponentially up to a cap, and after `max_retries` rejections the
/// request is abandoned into [`EngineReport::rejected`] instead of
/// wedging the port forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Abandon the head after this many NACKs (`None` = retry forever).
    pub max_retries: Option<u32>,
    /// Backoff after the first NACK, in cycles (doubles per retry).
    pub backoff_start: u64,
    /// Backoff ceiling in cycles.
    pub backoff_cap: u64,
}

impl RetryPolicy {
    /// Retry every cycle, forever — the engine's reference behaviour.
    pub fn immediate() -> Self {
        RetryPolicy {
            max_retries: None,
            backoff_start: 1,
            backoff_cap: 1,
        }
    }

    /// Bounded retries with capped exponential backoff.
    pub fn bounded(max_retries: u32, backoff_start: u64, backoff_cap: u64) -> Self {
        RetryPolicy {
            max_retries: Some(max_retries),
            backoff_start: backoff_start.max(1),
            backoff_cap: backoff_cap.max(backoff_start.max(1)),
        }
    }

    /// Cycles to wait before retry number `attempt` (1-based).
    pub fn delay(&self, attempt: u32) -> u64 {
        let shift = u64::from(attempt.saturating_sub(1)).min(32);
        (self.backoff_start << shift).min(self.backoff_cap).max(1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::immediate()
    }
}

/// Configuration of a sharded engine run.
#[derive(Debug, Clone)]
pub struct EngineSpec {
    /// Number of line-interleaved channels (= shards).
    pub num_channels: usize,
    /// Per-channel controller configuration.
    pub config: McConfig,
    /// Per-channel DRAM geometry.
    pub geometry: Geometry,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// Cycles per epoch between barriers (bounds cross-shard skew; has no
    /// effect on results, only on scheduling granularity).
    pub epoch_cycles: u64,
    /// Hard cycle bound: the run stops here even if shards still hold
    /// work (safety net against schedules that can never drain).
    pub max_cycles: u64,
    /// Per-channel command-log capacity; `None` disables logging.
    pub log_capacity: Option<usize>,
    /// Per-channel observer event-ring capacity; `None` runs unobserved
    /// (the controllers monomorphize to the no-op observer — zero
    /// overhead). `Some(cap)` attaches a
    /// [`TracingObserver`] per channel and the
    /// report carries [`EngineReport::observations`].
    pub event_capacity: Option<usize>,
    /// Event-driven fast-forward: when `true` (the default), each shard
    /// jumps over cycles where no submission is due and the controller is
    /// provably inert (`MemoryController::tick_until`). Results are
    /// bit-identical either way — `false` forces the cycle-by-cycle
    /// reference path (the differential baseline).
    pub fast_forward: bool,
    /// Deterministic fault plan applied to every channel (salted by
    /// channel index so channels draw distinct episode timelines).
    /// `None` — and `Some(FaultPlan::none())` — inject nothing and leave
    /// the run bit-identical to a fault-free build.
    pub fault_plan: Option<FaultPlan>,
    /// Head-of-line retry policy at each channel's submission port.
    pub retry: RetryPolicy,
}

impl EngineSpec {
    /// Fingerprint binding a checkpoint to this exact spec *and*
    /// submission schedule. Restoring a checkpoint under a different
    /// scheduler, geometry, timing, fault plan, retry policy, or workload
    /// fails with [`SnapshotError::ConfigMismatch`] instead of resuming
    /// nonsense. This is same-binary mismatch *detection* (crash recovery
    /// of an interrupted run), not a cross-version compatibility contract.
    pub fn fingerprint(&self, events: &[SubmitEvent]) -> u64 {
        let mut fp = Fingerprint::new("fqms-engine");
        fp.push_str(&format!("{self:?}"));
        fp.push_u64(events.len() as u64);
        for ev in events {
            fp.push_u64(ev.at.as_u64());
            fp.push_u64(u64::from(ev.thread.as_u32()));
            fp.push_u64(u64::from(ev.kind == RequestKind::Write));
            fp.push_u64(ev.phys);
        }
        fp.finish()
    }

    /// The paper's Table 5 configuration under FQ-VFTF, spread over
    /// `num_channels` channels, with engine defaults (1024-cycle epochs,
    /// 10M-cycle safety bound, logging disabled).
    pub fn paper(num_channels: usize, num_threads: usize) -> Self {
        EngineSpec {
            num_channels,
            config: McConfig::paper(num_threads, SchedulerKind::FqVftf),
            geometry: Geometry::paper(),
            timing: TimingParams::ddr2_800(),
            epoch_cycles: 1024,
            max_cycles: 10_000_000,
            log_capacity: None,
            event_capacity: None,
            fast_forward: true,
            fault_plan: None,
            retry: RetryPolicy::immediate(),
        }
    }
}

/// The submission port of one channel: the pre-routed event queue plus
/// head-of-line retry state under the engine's [`RetryPolicy`].
#[derive(Debug)]
struct SubmitPort {
    /// Channel-local events in submission order; the head blocks the
    /// tail (modelling per-thread back-pressure at the channel port).
    events: VecDeque<SubmitEvent>,
    retry: RetryPolicy,
    /// NACKs the current head has absorbed.
    head_retries: u32,
    /// Cycle before which the head is backing off (not re-submitted).
    head_ready_at: u64,
    /// Requests abandoned after exhausting `max_retries`.
    rejected: Vec<SubmitEvent>,
    /// Requests terminally dropped by the controller's load shedder
    /// ([`Nack::Shed`]); never retried.
    shed: Vec<SubmitEvent>,
}

/// One channel plus its pre-routed slice of the submission schedule —
/// a self-contained [`Shard`].
#[derive(Debug)]
pub struct ChannelShard {
    mc: MemoryController,
    port: SubmitPort,
    completions: Vec<Completion>,
    /// Channel-local observer; shards never share one, so observation
    /// needs no synchronization and stays deterministic.
    obs: Option<TracingObserver>,
    /// Event-driven fast-forward enabled (from [`EngineSpec`]).
    fast: bool,
}

/// Drives one channel over one epoch. Generic over the observer so the
/// unobserved path monomorphizes with [`NullObserver`] to exactly the
/// pre-observability code.
///
/// With `fast` set, the drain loop exploits that it knows every future
/// arrival: while the head submission is not due (or backing off) for at
/// least two cycles, the only things that can happen are
/// controller-internal, so the window up to `min(epoch end, next
/// submission - 1)` is handed to [`MemoryController::tick_until`], which
/// skips provably-inert cycles. Under [`RetryPolicy::immediate`] a NACKed
/// head becomes due again on the very next cycle, which forces the
/// cycle-by-cycle path below — retries (and their
/// [`fqms_obs::Event::Nack`] events) replay exactly as in the reference
/// mode.
fn drive<O: Observer>(
    mc: &mut MemoryController,
    port: &mut SubmitPort,
    completions: &mut Vec<Completion>,
    obs: &mut O,
    fast: bool,
    start: u64,
    end: u64,
) -> bool {
    let mut now = start;
    while now < end {
        let next_due = port
            .events
            .front()
            .map_or(u64::MAX, |e| e.at.as_u64().max(port.head_ready_at));
        if fast && next_due > now + 1 {
            let stop = end.min(next_due - 1);
            mc.tick_until_observed(DramCycle::new(now), DramCycle::new(stop), completions, obs);
            now = stop;
            continue;
        }
        now += 1;
        let cycle = DramCycle::new(now);
        while let Some(ev) = port.events.front() {
            if ev.at.as_u64() > now || port.head_ready_at > now {
                break; // not due yet, or backing off
            }
            let ev = *ev;
            match mc.try_submit_observed(ev.thread, ev.kind, ev.phys, cycle, obs) {
                Ok(_) => {
                    port.events.pop_front();
                    port.head_retries = 0;
                    port.head_ready_at = 0;
                }
                Err(Nack::Shed { .. }) => {
                    // Terminal refusal: the controller's load shedder
                    // dropped the request and retrying cannot help. Drain
                    // past it; the next event may still submit this cycle.
                    port.shed.push(ev);
                    port.events.pop_front();
                    port.head_retries = 0;
                    port.head_ready_at = 0;
                    continue;
                }
                Err(nack) => {
                    port.head_retries += 1;
                    if port
                        .retry
                        .max_retries
                        .is_some_and(|max| port.head_retries > max)
                    {
                        // Bounded retry exhausted: abandon the head so the
                        // port drains instead of wedging; the next event may
                        // still submit this cycle.
                        if O::ENABLED {
                            obs.on_event(&Event::Rejected {
                                cycle: now,
                                thread: ev.thread.as_u32(),
                                is_write: ev.kind == RequestKind::Write,
                            });
                        }
                        port.rejected.push(ev);
                        port.events.pop_front();
                        port.head_retries = 0;
                        port.head_ready_at = 0;
                        continue;
                    }
                    // A throttled head knows exactly when tokens return:
                    // honour the larger of the policy backoff and the
                    // controller's own retry-after hint (retrying earlier
                    // is provably futile).
                    let mut delay = port.retry.delay(port.head_retries);
                    if let Nack::Throttled { retry_after } = nack {
                        delay = delay.max(retry_after);
                    }
                    port.head_ready_at = now + delay;
                    break; // head-of-line NACK: retry after the backoff
                }
            }
        }
        mc.step_into(cycle, completions, obs);
    }
    !(port.events.is_empty() && mc.is_idle())
}

impl Shard for ChannelShard {
    fn run_epoch(&mut self, start: u64, end: u64) -> bool {
        match &mut self.obs {
            Some(obs) => drive(
                &mut self.mc,
                &mut self.port,
                &mut self.completions,
                obs,
                self.fast,
                start,
                end,
            ),
            None => drive(
                &mut self.mc,
                &mut self.port,
                &mut self.completions,
                &mut NullObserver,
                self.fast,
                start,
                end,
            ),
        }
    }
}

/// The deterministic merge of a sharded run, assembled in channel-index
/// order. Two reports compare equal iff every per-thread counter, every
/// completion, and every retained command record agree.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Cycle the run reached (epoch-aligned, capped at `max_cycles`).
    pub cycles: u64,
    /// Per-thread statistics summed across channels.
    pub per_thread: Vec<ThreadStats>,
    /// Completions per channel, in completion order within each channel.
    pub completions: Vec<Vec<Completion>>,
    /// Retained command log per channel (empty when logging is off).
    pub command_logs: Vec<CommandLog>,
    /// Data-bus busy cycles summed across channels.
    pub bus_busy_cycles: u64,
    /// Events still unsubmitted when the run stopped (0 iff the schedule
    /// fully drained within `max_cycles`).
    pub unsubmitted: usize,
    /// Requests abandoned per channel after exhausting the retry policy
    /// (always empty under [`RetryPolicy::immediate`]).
    pub rejected: Vec<Vec<SubmitEvent>>,
    /// Requests terminally dropped per channel by the overload layer's
    /// load shedder (always empty when [`McConfig::overload`] is unset).
    /// Together with completions, fault drops, and rejections these
    /// account for every submitted event:
    /// `completed + dropped + rejected + shed == submitted`.
    pub shed: Vec<Vec<SubmitEvent>>,
    /// Controller cycles actually simulated, summed over channels.
    /// Diagnostic only: differs between fast-forward and reference runs
    /// even though every semantic field is bit-identical.
    pub stepped_cycles: u64,
    /// Provably-inert cycles skipped by event-driven fast-forward, summed
    /// over channels (0 when [`EngineSpec::fast_forward`] is off).
    pub skipped_cycles: u64,
    /// Per-channel event streams and merged metrics, when
    /// [`EngineSpec::event_capacity`] is set. Assembled in channel-index
    /// order, so serial and parallel runs agree bit-for-bit.
    pub observations: Option<Observations>,
}

impl EngineReport {
    /// Total completed requests across channels.
    pub fn total_completed(&self) -> usize {
        self.completions.iter().map(Vec::len).sum()
    }

    /// Total requests abandoned by the retry policy across channels.
    pub fn total_rejected(&self) -> usize {
        self.rejected.iter().map(Vec::len).sum()
    }

    /// Total requests shed by the overload layer across channels.
    pub fn total_shed(&self) -> usize {
        self.shed.iter().map(Vec::len).sum()
    }

    /// Fraction of simulated time covered by skipped cycles (0.0 when
    /// fast-forward is off or the run never idled).
    pub fn skip_rate(&self) -> f64 {
        let total = self.stepped_cycles + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }
}

fn build_shards(spec: &EngineSpec, events: &[SubmitEvent]) -> Result<Vec<ChannelShard>, String> {
    if spec.num_channels == 0 {
        return Err("at least one channel is required".into());
    }
    if spec.epoch_cycles == 0 || spec.max_cycles == 0 {
        return Err("epoch_cycles and max_cycles must be positive".into());
    }
    spec.config.validate()?;
    let mut shards = Vec::with_capacity(spec.num_channels);
    for ch in 0..spec.num_channels {
        let mut mc = MemoryController::new(spec.config.clone(), spec.geometry, spec.timing)?;
        mc.set_id_numbering(ch as u64, spec.num_channels as u64);
        if let Some(cap) = spec.log_capacity {
            mc.enable_command_log(cap);
        }
        if let Some(plan) = &spec.fault_plan {
            mc.set_fault_plan(&plan.salted(ch as u64));
        }
        shards.push(ChannelShard {
            mc,
            port: SubmitPort {
                events: VecDeque::new(),
                retry: spec.retry,
                head_retries: 0,
                head_ready_at: 0,
                rejected: Vec::new(),
                shed: Vec::new(),
            },
            completions: Vec::new(),
            obs: spec
                .event_capacity
                .map(|cap| TracingObserver::new(cap, spec.config.num_threads())),
            fast: spec.fast_forward,
        });
    }
    let mut last_at = 0u64;
    for ev in events {
        if ev.at.as_u64() < last_at {
            return Err("submission schedule must be sorted by cycle".into());
        }
        last_at = ev.at.as_u64();
        let (ch, local) =
            MultiChannelController::localize(spec.config.line_bytes, spec.num_channels, ev.phys);
        shards[ch]
            .port
            .events
            .push_back(SubmitEvent { phys: local, ..*ev });
    }
    Ok(shards)
}

fn merge(spec: &EngineSpec, shards: Vec<ChannelShard>, cycles: u64) -> EngineReport {
    let threads = spec.config.num_threads();
    let mut per_thread = vec![ThreadStats::default(); threads];
    let mut completions = Vec::with_capacity(shards.len());
    let mut command_logs = Vec::new();
    let mut bus_busy_cycles = 0;
    let mut unsubmitted = 0;
    let mut rejected = Vec::with_capacity(shards.len());
    let mut shed = Vec::with_capacity(shards.len());
    let mut stepped_cycles = 0;
    let mut skipped_cycles = 0;
    let mut observations = spec.event_capacity.map(|_| Observations::default());
    for shard in shards {
        for (t, agg) in per_thread.iter_mut().enumerate() {
            agg.merge(shard.mc.stats().thread(ThreadId::new(t as u32)));
        }
        bus_busy_cycles += shard.mc.dram().bus_busy_cycles();
        unsubmitted += shard.port.events.len();
        rejected.push(shard.port.rejected);
        shed.push(shard.port.shed);
        stepped_cycles += shard.mc.stepped_cycles();
        skipped_cycles += shard.mc.skipped_cycles();
        if let Some(log) = shard.mc.command_log() {
            command_logs.push(log.clone());
        }
        completions.push(shard.completions);
        if let (Some(merged), Some(obs)) = (&mut observations, shard.obs) {
            // Channel-index order: streams stay separate, metrics merge
            // deterministically.
            let (events, metrics) = obs.into_parts();
            merged.event_streams.push(events);
            merged.metrics.merge(&metrics);
        }
    }
    EngineReport {
        cycles,
        per_thread,
        completions,
        command_logs,
        bus_busy_cycles,
        unsubmitted,
        rejected,
        shed,
        stepped_cycles,
        skipped_cycles,
        observations,
    }
}

fn put_submit_event(w: &mut SectionWriter, ev: &SubmitEvent) {
    w.put_u64(ev.at.as_u64());
    w.put_u32(ev.thread.as_u32());
    w.put_bool(ev.kind == RequestKind::Write);
    w.put_u64(ev.phys);
}

fn get_submit_event(r: &mut SectionReader<'_>) -> Result<SubmitEvent, SnapshotError> {
    Ok(SubmitEvent {
        at: DramCycle::new(r.get_u64()?),
        thread: ThreadId::new(r.get_u32()?),
        kind: if r.get_bool()? {
            RequestKind::Write
        } else {
            RequestKind::Read
        },
        phys: r.get_u64()?,
    })
}

/// The rebuilt port already holds the full pre-routed schedule (it is a
/// pure function of spec + events, both bound by the fingerprint), so the
/// queue serializes as a *remaining count*: restore pops the events the
/// interrupted run had already consumed.
impl Snapshot for SubmitPort {
    fn save(&self, w: &mut SectionWriter) {
        // A bare count, not an in-band sequence: the queue's payload is
        // rebuilt from the schedule, so `seq_len`'s elements-fit-in-
        // remaining-bytes sanity check would misfire whenever the queued
        // count exceeds the section's trailing byte count (dense
        // schedules checkpointed early). Same wire bytes either way.
        w.put_u64(self.events.len() as u64);
        w.put_u32(self.head_retries);
        w.put_u64(self.head_ready_at);
        w.put_seq_len(self.rejected.len());
        for ev in &self.rejected {
            put_submit_event(w, ev);
        }
        w.put_seq_len(self.shed.len());
        for ev in &self.shed {
            put_submit_event(w, ev);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let remaining = r.get_u64()? as usize;
        if remaining > self.events.len() {
            return Err(r.malformed(format!(
                "{remaining} queued submissions exceed the rebuilt schedule's {}",
                self.events.len()
            )));
        }
        while self.events.len() > remaining {
            self.events.pop_front();
        }
        self.head_retries = r.get_u32()?;
        self.head_ready_at = r.get_u64()?;
        let n = r.seq_len()?;
        let mut rejected = Vec::with_capacity(n);
        for _ in 0..n {
            rejected.push(get_submit_event(r)?);
        }
        self.rejected = rejected;
        let n = r.seq_len()?;
        let mut shed = Vec::with_capacity(n);
        for _ in 0..n {
            shed.push(get_submit_event(r)?);
        }
        self.shed = shed;
        Ok(())
    }
}

impl Snapshot for ChannelShard {
    fn save(&self, w: &mut SectionWriter) {
        self.mc.save(w);
        self.port.save(w);
        w.put_seq_len(self.completions.len());
        for c in &self.completions {
            crate::controller::put_completion(w, c);
        }
        w.put_bool(self.obs.is_some());
        if let Some(obs) = &self.obs {
            obs.save(w);
        }
        w.put_bool(self.fast);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.mc.restore(r)?;
        self.port.restore(r)?;
        let n = r.seq_len()?;
        let mut completions = Vec::with_capacity(n);
        for _ in 0..n {
            completions.push(crate::controller::get_completion(r)?);
        }
        self.completions = completions;
        let observed = r.get_bool()?;
        if observed != self.obs.is_some() {
            return Err(
                r.malformed("snapshot and shard disagree on observer attachment".to_string())
            );
        }
        if let Some(obs) = &mut self.obs {
            obs.restore(r)?;
        }
        let fast = r.get_bool()?;
        if fast != self.fast {
            return Err(r.malformed(format!(
                "snapshot fast-forward={fast}, spec fast-forward={}",
                self.fast
            )));
        }
        Ok(())
    }
}

/// Why [`resume_serial`] could not resume a checkpoint.
#[derive(Debug)]
pub enum ResumeError {
    /// The spec or schedule is invalid, or contradicts the checkpoint's
    /// epoch bookkeeping.
    Spec(String),
    /// The checkpoint bytes were rejected by the snapshot codec
    /// (truncation, corruption, version or configuration mismatch, or an
    /// invalid decoded state).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Spec(e) => write!(f, "cannot resume: {e}"),
            ResumeError::Snapshot(e) => write!(f, "cannot resume: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Spec(_) => None,
            ResumeError::Snapshot(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for ResumeError {
    fn from(e: SnapshotError) -> Self {
        ResumeError::Snapshot(e)
    }
}

/// Runs the schedule serially until simulated cycle `kill_at`, captures a
/// checkpoint there, and "crashes" — the differential half of the
/// kill-and-resume guarantee. The kill cycle may fall anywhere, including
/// mid-epoch: the epoch containing it is split at exactly that cycle,
/// which is semantically invisible (each shard's drive loop carries no
/// cross-cycle state beyond what the checkpoint serializes).
///
/// Feeding the returned bytes to [`resume_serial`] with the same spec and
/// events produces an [`EngineReport`] **bit-identical** to the
/// uninterrupted [`simulate_serial`] run.
///
/// # Errors
///
/// Returns a description if the spec/schedule is invalid, `kill_at` is
/// outside `(0, max_cycles]`, or the run drains before reaching it.
pub fn simulate_serial_checkpointed(
    spec: &EngineSpec,
    events: &[SubmitEvent],
    kill_at: u64,
) -> Result<Vec<u8>, String> {
    if kill_at == 0 || kill_at > spec.max_cycles {
        return Err(format!(
            "kill cycle {kill_at} outside (0, {}]",
            spec.max_cycles
        ));
    }
    let mut shards = build_shards(spec, events)?;
    let mut done = vec![false; shards.len()];
    let mut remaining = shards.len();
    let mut start = 0u64;
    while start < spec.max_cycles && remaining > 0 {
        let end = spec.max_cycles.min(start + spec.epoch_cycles);
        if kill_at <= end {
            // The kill cycle falls inside this epoch: advance every live
            // shard to it, capture the checkpoint, and stop. The epoch's
            // activity flags are *not* updated — they are only decidable
            // at the true epoch boundary, which the resume reaches.
            for (i, shard) in shards.iter_mut().enumerate() {
                if !done[i] {
                    shard.run_epoch(start, kill_at);
                }
            }
            return Ok(write_checkpoint(
                spec, events, &shards, kill_at, start, end, &done,
            ));
        }
        for (i, shard) in shards.iter_mut().enumerate() {
            if !done[i] && !shard.run_epoch(start, end) {
                done[i] = true;
                remaining -= 1;
            }
        }
        start = end;
    }
    Err(format!(
        "run drained at cycle {start}, before kill cycle {kill_at}"
    ))
}

/// Serializes a mid-epoch engine checkpoint: the epoch bookkeeping
/// (`kill_at` inside its epoch `(start, end]`, per-shard activity flags
/// from *before* that epoch) followed by every shard in channel order.
/// Shared by the serial and parallel checkpointed runs so both emit the
/// same bytes for the same state.
fn write_checkpoint(
    spec: &EngineSpec,
    events: &[SubmitEvent],
    shards: &[ChannelShard],
    kill_at: u64,
    start: u64,
    end: u64,
    done: &[bool],
) -> Vec<u8> {
    let mut w = SnapshotWriter::new(spec.fingerprint(events));
    w.section("engine", |s| {
        s.put_u64(kill_at);
        s.put_u64(start);
        s.put_u64(end);
        s.put_seq_len(done.len());
        for &d in done {
            s.put_bool(d);
        }
    });
    w.section("channels", |s| {
        s.put_seq_len(shards.len());
        for shard in shards {
            shard.save(s);
        }
    });
    w.into_bytes()
}

/// Validates and decodes a checkpoint back into restored shards plus the
/// epoch bookkeeping (`kill_at`, interrupted epoch end, activity flags).
/// Shared by [`resume_serial`] and [`resume_parallel`].
fn restore_checkpoint(
    spec: &EngineSpec,
    events: &[SubmitEvent],
    bytes: &[u8],
) -> Result<(Vec<ChannelShard>, u64, u64, Vec<bool>), ResumeError> {
    let mut shards = build_shards(spec, events).map_err(ResumeError::Spec)?;
    let mut r = SnapshotReader::new(bytes, spec.fingerprint(events))?;
    let (kill_at, _epoch_start, epoch_end, done) = r.section("engine", |s| {
        let kill_at = s.get_u64()?;
        let epoch_start = s.get_u64()?;
        let epoch_end = s.get_u64()?;
        if !(epoch_start < kill_at && kill_at <= epoch_end) {
            return Err(s.malformed(format!(
                "kill cycle {kill_at} outside its epoch ({epoch_start}, {epoch_end}]"
            )));
        }
        if epoch_end > spec.max_cycles {
            return Err(s.malformed(format!(
                "epoch end {epoch_end} beyond max_cycles {}",
                spec.max_cycles
            )));
        }
        let n = s.seq_len()?;
        let mut done = Vec::with_capacity(n);
        for _ in 0..n {
            done.push(s.get_bool()?);
        }
        Ok((kill_at, epoch_start, epoch_end, done))
    })?;
    if done.len() != shards.len() {
        return Err(ResumeError::Spec(format!(
            "checkpoint tracks {} shards, spec builds {}",
            done.len(),
            shards.len()
        )));
    }
    r.section("channels", |s| {
        let n = s.seq_len()?;
        if n != shards.len() {
            return Err(s.malformed(format!(
                "checkpoint holds {n} channels, spec builds {}",
                shards.len()
            )));
        }
        for shard in &mut shards {
            shard.restore(s)?;
        }
        Ok(())
    })?;
    r.finish()?;
    Ok((shards, kill_at, epoch_end, done))
}

/// Resumes a run from a [`simulate_serial_checkpointed`] checkpoint and
/// drives it to completion, finishing the interrupted epoch from the kill
/// cycle and then continuing the standard epoch loop.
///
/// Resumption is exact: a shard's epoch activity flag is evaluated at the
/// epoch's true end, and shard idleness is monotone within an epoch (the
/// port is pre-routed; no new work can arrive), so the flags the resumed
/// run computes are the ones the uninterrupted run would have.
///
/// # Errors
///
/// [`ResumeError::Spec`] if the spec/schedule is invalid or the decoded
/// epoch bookkeeping contradicts it; [`ResumeError::Snapshot`] if the
/// bytes are truncated, corrupted, from another format version, or from a
/// different spec/workload (fingerprint mismatch). Never panics.
pub fn resume_serial(
    spec: &EngineSpec,
    events: &[SubmitEvent],
    bytes: &[u8],
) -> Result<EngineReport, ResumeError> {
    let (mut shards, kill_at, epoch_end, mut done) = restore_checkpoint(spec, events, bytes)?;

    // Finish the interrupted epoch from the kill cycle, then continue the
    // standard epoch loop — exactly `run_serial`'s bookkeeping.
    let mut remaining = done.iter().filter(|&&d| !d).count();
    for (i, shard) in shards.iter_mut().enumerate() {
        if !done[i] && !shard.run_epoch(kill_at, epoch_end) {
            done[i] = true;
            remaining -= 1;
        }
    }
    let mut start = epoch_end;
    while start < spec.max_cycles && remaining > 0 {
        let end = spec.max_cycles.min(start + spec.epoch_cycles);
        for (i, shard) in shards.iter_mut().enumerate() {
            if !done[i] && !shard.run_epoch(start, end) {
                done[i] = true;
                remaining -= 1;
            }
        }
        start = end;
    }
    for shard in &mut shards {
        shard.mc.finish(DramCycle::new(start));
    }
    Ok(merge(spec, shards, start))
}

/// Runs the schedule on the calling thread, one channel after another per
/// epoch. Reference semantics for [`simulate_parallel`].
///
/// # Errors
///
/// Returns a description if the spec is invalid or the schedule is not
/// sorted by cycle.
pub fn simulate_serial(spec: &EngineSpec, events: &[SubmitEvent]) -> Result<EngineReport, String> {
    let mut shards = build_shards(spec, events)?;
    let cycles = run_serial(&mut shards, spec.max_cycles, spec.epoch_cycles);
    for shard in &mut shards {
        shard.mc.finish(DramCycle::new(cycles));
    }
    Ok(merge(spec, shards, cycles))
}

/// Runs the schedule with channels sharded across `num_threads` workers.
/// Bit-identical to [`simulate_serial`] on the same inputs (see the
/// module docs for why).
///
/// # Errors
///
/// Returns a description if the spec is invalid, the schedule is not
/// sorted by cycle, or `num_threads` is zero.
pub fn simulate_parallel(
    spec: &EngineSpec,
    events: &[SubmitEvent],
    num_threads: usize,
) -> Result<EngineReport, String> {
    if num_threads == 0 {
        return Err("at least one worker thread is required".into());
    }
    let mut shards = build_shards(spec, events)?;
    let cycles = run_parallel(&mut shards, spec.max_cycles, spec.epoch_cycles, num_threads);
    for shard in &mut shards {
        shard.mc.finish(DramCycle::new(cycles));
    }
    Ok(merge(spec, shards, cycles))
}

/// [`simulate_parallel`] on the retained lockstep epoch-barrier executor:
/// worker threads synchronise twice per epoch instead of free-running.
/// Bit-identical to both [`simulate_serial`] and [`simulate_parallel`];
/// kept for differential testing and for measuring what the barriers cost
/// (the `speedup` bench reports both executors side by side).
///
/// # Errors
///
/// Returns a description if the spec is invalid, the schedule is not
/// sorted by cycle, or `num_threads` is zero.
pub fn simulate_parallel_lockstep(
    spec: &EngineSpec,
    events: &[SubmitEvent],
    num_threads: usize,
) -> Result<EngineReport, String> {
    if num_threads == 0 {
        return Err("at least one worker thread is required".into());
    }
    let mut shards = build_shards(spec, events)?;
    let cycles = run_lockstep(&mut shards, spec.max_cycles, spec.epoch_cycles, num_threads);
    for shard in &mut shards {
        shard.mc.finish(DramCycle::new(cycles));
    }
    Ok(merge(spec, shards, cycles))
}

/// [`simulate_serial_checkpointed`] with the per-shard work spread across
/// `num_threads` workers. Each shard free-runs through the same epoch
/// windows the serial checkpointed run uses — full epochs up to the one
/// containing `kill_at`, then the partial window ending exactly there —
/// so the returned bytes are **byte-identical** to the serial
/// checkpoint's: shard states match window-for-window, activity flags are
/// evaluated at the same boundaries, and the snapshot is assembled in
/// channel order after all workers join (the only sync point).
///
/// # Errors
///
/// Same conditions as [`simulate_serial_checkpointed`], plus
/// `num_threads == 0`.
pub fn simulate_parallel_checkpointed(
    spec: &EngineSpec,
    events: &[SubmitEvent],
    kill_at: u64,
    num_threads: usize,
) -> Result<Vec<u8>, String> {
    if num_threads == 0 {
        return Err("at least one worker thread is required".into());
    }
    if kill_at == 0 || kill_at > spec.max_cycles {
        return Err(format!(
            "kill cycle {kill_at} outside (0, {}]",
            spec.max_cycles
        ));
    }
    let mut shards = build_shards(spec, events)?;
    // Per-shard epoch walk, identical windows to the serial loop: a shard
    // runs full epochs (updating its activity flag) until the epoch whose
    // end reaches `kill_at`, which it runs only up to the kill cycle,
    // leaving the flag for that epoch undecided — exactly what the serial
    // checkpointed run records.
    let outcomes = for_each_shard(&mut shards, num_threads, |_idx, shard| {
        let mut start = 0u64;
        loop {
            let end = spec.max_cycles.min(start + spec.epoch_cycles);
            if kill_at <= end {
                shard.run_epoch(start, kill_at);
                return (false, 0u64);
            }
            if !shard.run_epoch(start, end) {
                // Drained: never stepped again, so the kill epoch (which
                // always exists, kill_at <= max_cycles) is not reached.
                return (true, end);
            }
            start = end;
        }
    });
    let done: Vec<bool> = outcomes.iter().map(|&(d, _)| d).collect();
    if done.iter().all(|&d| d) {
        // All shards drained before the kill epoch: the serial loop stops
        // at the end of the epoch in which the last one drained.
        let drained_at = outcomes.iter().map(|&(_, end)| end).max().unwrap_or(0);
        return Err(format!(
            "run drained at cycle {drained_at}, before kill cycle {kill_at}"
        ));
    }
    let epoch_start = (kill_at - 1) / spec.epoch_cycles * spec.epoch_cycles;
    let epoch_end = spec.max_cycles.min(epoch_start + spec.epoch_cycles);
    Ok(write_checkpoint(
        spec,
        events,
        &shards,
        kill_at,
        epoch_start,
        epoch_end,
        &done,
    ))
}

/// Resumes a checkpoint (from either the serial or the parallel
/// checkpointed run — the bytes are identical) with the remaining work
/// spread across `num_threads` workers, producing an [`EngineReport`]
/// **bit-identical** to the uninterrupted [`simulate_serial`] run.
///
/// Each live shard finishes its interrupted epoch from the kill cycle and
/// then free-runs through the standard epoch windows to its own drain (or
/// `max_cycles`); the run's final cycle is the maximum over shards, the
/// same value the serial epoch loop reaches.
///
/// # Errors
///
/// Same conditions as [`resume_serial`], plus [`ResumeError::Spec`] if
/// `num_threads` is zero.
pub fn resume_parallel(
    spec: &EngineSpec,
    events: &[SubmitEvent],
    bytes: &[u8],
    num_threads: usize,
) -> Result<EngineReport, ResumeError> {
    if num_threads == 0 {
        return Err(ResumeError::Spec(
            "at least one worker thread is required".into(),
        ));
    }
    let (mut shards, kill_at, epoch_end, done) = restore_checkpoint(spec, events, bytes)?;
    let ends = for_each_shard(&mut shards, num_threads, |idx, shard| {
        if done[idx] {
            return epoch_end;
        }
        if !shard.run_epoch(kill_at, epoch_end) {
            return epoch_end;
        }
        let mut start = epoch_end;
        while start < spec.max_cycles {
            let end = spec.max_cycles.min(start + spec.epoch_cycles);
            let alive = shard.run_epoch(start, end);
            start = end;
            if !alive {
                break;
            }
        }
        start
    });
    let cycles = ends.into_iter().max().unwrap_or(epoch_end);
    for shard in &mut shards {
        shard.mc.finish(DramCycle::new(cycles));
    }
    Ok(merge(spec, shards, cycles))
}

/// Generates a deterministic open-loop submission schedule: each of
/// `num_threads` threads issues a request per cycle with probability
/// `intensity` (30% writes), to uniformly random cache lines. Events are
/// emitted in non-decreasing cycle order, as the engine requires.
pub fn synthetic_workload(
    num_threads: u32,
    cycles: u64,
    intensity: f64,
    seed: u64,
) -> Vec<SubmitEvent> {
    let mut rng = SimRng::new(seed);
    let mut events = Vec::new();
    for c in 1..=cycles {
        for t in 0..num_threads {
            if rng.chance(intensity) {
                let kind = if rng.chance(0.3) {
                    RequestKind::Write
                } else {
                    RequestKind::Read
                };
                events.push(SubmitEvent {
                    at: DramCycle::new(c),
                    thread: ThreadId::new(t),
                    kind,
                    phys: rng.next_below(1 << 24) * 64,
                });
            }
        }
    }
    events
}

/// Generates a deterministic interference mix for QoS experiments: thread
/// 0 is a light, read-only, small-footprint "QoS" thread (high row
/// locality, `qos_intensity` requests per cycle), while threads `1..` are
/// heavy streamers (`heavy_intensity`, 30% writes, uniform over a large
/// footprint) that monopolize an unfair scheduler. Events are emitted in
/// non-decreasing cycle order, as the engine requires.
pub fn interference_workload(
    num_threads: u32,
    cycles: u64,
    qos_intensity: f64,
    heavy_intensity: f64,
    seed: u64,
) -> Vec<SubmitEvent> {
    assert!(num_threads >= 2, "need a QoS thread and an aggressor");
    let mut rng = SimRng::new(seed);
    let mut events = Vec::new();
    for c in 1..=cycles {
        for t in 0..num_threads {
            if t == 0 {
                if rng.chance(qos_intensity) {
                    events.push(SubmitEvent {
                        at: DramCycle::new(c),
                        thread: ThreadId::new(0),
                        kind: RequestKind::Read,
                        // Small footprint: 64 KiB of lines, high reuse.
                        phys: rng.next_below(1 << 10) * 64,
                    });
                }
            } else if rng.chance(heavy_intensity) {
                let kind = if rng.chance(0.3) {
                    RequestKind::Write
                } else {
                    RequestKind::Read
                };
                events.push(SubmitEvent {
                    at: DramCycle::new(c),
                    thread: ThreadId::new(t),
                    kind,
                    phys: rng.next_below(1 << 24) * 64,
                });
            }
        }
    }
    events
}

/// Generates a deterministic *starvation-adversarial* schedule for
/// differential QoS tests: threads `1..num_threads` stream row-buffer
/// hits into a small set of shared banks at high intensity (each
/// aggressor camps on one row of one bank), while thread 0 — the victim —
/// occasionally reads a *different* row of the same banks. Under FR-FCFS
/// the aggressors' ready CAS commands chain ahead of the victim's row
/// miss indefinitely; FQ-VFTF's priority-inversion bound (`x = tRAS`)
/// caps the chaining and bounds the victim's delay.
///
/// Addresses are encoded for `geometry` with 64-byte lines. Intended for
/// single-channel engine specs (multi-channel routing would scatter the
/// carefully aimed bank conflicts).
pub fn adversarial_workload(
    geometry: &Geometry,
    num_threads: u32,
    cycles: u64,
    seed: u64,
) -> Vec<SubmitEvent> {
    assert!(num_threads >= 2, "need a victim and at least one aggressor");
    let map = AddressMap::new(*geometry, 64);
    let shared_banks = geometry.banks.min(2);
    let mut rng = SimRng::new(seed);
    let mut events = Vec::new();
    let mut agg_col = vec![0u32; num_threads as usize];
    let mut victim_col = 0u32;
    for c in 1..=cycles {
        for t in 0..num_threads {
            if t == 0 {
                // Victim: sparse reads to a row the aggressors never open.
                if rng.chance(0.02) {
                    let bank = victim_col % shared_banks;
                    events.push(SubmitEvent {
                        at: DramCycle::new(c),
                        thread: ThreadId::new(0),
                        kind: RequestKind::Read,
                        phys: map.encode(DramAddress {
                            rank: RankId::new(0),
                            bank: BankId::new(bank),
                            row: RowId::new(997),
                            col: ColId::new(victim_col % 64),
                        }),
                    });
                    victim_col = victim_col.wrapping_add(1);
                }
            } else if rng.chance(0.9) {
                // Aggressor: march columns across one hot row of one bank
                // so a ready CAS is (almost) always available.
                let bank = (t - 1) % shared_banks;
                let col = agg_col[t as usize];
                events.push(SubmitEvent {
                    at: DramCycle::new(c),
                    thread: ThreadId::new(t),
                    kind: RequestKind::Read,
                    phys: map.encode(DramAddress {
                        rank: RankId::new(0),
                        bank: BankId::new(bank),
                        row: RowId::new(100 + bank),
                        col: ColId::new(col % 64),
                    }),
                });
                agg_col[t as usize] = col.wrapping_add(1);
            }
        }
    }
    events
}

/// Generates a deterministic *regulated* schedule for real-time mode
/// (ISSUE 9): each thread with an `rt` class in `reg` submits at most its
/// per-period `budget` requests per regulator window (front-loaded,
/// row-local reads over a small footprint — the arrival curve the WCET
/// bound of [`crate::wcet::bound_for`] assumes), while best-effort
/// threads flood at `be_intensity` with a bank-camping access pattern
/// (30% writes). Under [`McConfig::regulation`] with partitioning the
/// controller folds every address into the issuing thread's bank slice,
/// so the camping pressure lands on the shared bus and rank-wide timing
/// windows — exactly the interference the analytic bound charges for.
/// Events are emitted in non-decreasing cycle order, as the engine
/// requires.
pub fn realtime_workload(
    reg: &crate::config::RegulationConfig,
    num_threads: u32,
    cycles: u64,
    be_intensity: f64,
    seed: u64,
) -> Vec<SubmitEvent> {
    let period = reg.period.max(1);
    let mut rng = SimRng::new(seed);
    let mut events = Vec::new();
    // Requests submitted by each RT thread in the current window.
    let mut window_used = vec![0u64; num_threads as usize];
    let mut window = u64::MAX;
    let mut be_col = vec![0u64; num_threads as usize];
    for c in 1..=cycles {
        let w = (c - 1) / period;
        if w != window {
            window = w;
            window_used.fill(0);
        }
        for t in 0..num_threads {
            let class = reg.classes.get(t as usize);
            let rt = class.is_some_and(|cl| cl.rt);
            if rt {
                let budget = class.map_or(0, |cl| cl.budget);
                if window_used[t as usize] >= budget {
                    continue;
                }
                // Front-load the window (4x the uniform rate, capped by
                // the budget check above) so the backlog the bound's
                // `period` term covers is actually exercised.
                let p = (4.0 * budget as f64 / period as f64).min(1.0);
                if rng.chance(p) {
                    window_used[t as usize] += 1;
                    // Small row-local footprint: 64 lines per thread.
                    let phys = (u64::from(t) << 20) | (rng.next_below(64) * 64);
                    events.push(SubmitEvent {
                        at: DramCycle::new(c),
                        thread: ThreadId::new(t),
                        kind: RequestKind::Read,
                        phys,
                    });
                }
            } else if rng.chance(be_intensity) {
                // Best-effort aggressor: camp on one hot region, marching
                // columns so a ready CAS is almost always available.
                let kind = if rng.chance(0.3) {
                    RequestKind::Write
                } else {
                    RequestKind::Read
                };
                let col = be_col[t as usize];
                be_col[t as usize] = col.wrapping_add(1);
                let phys = (u64::from(t) << 20) | ((col % 64) * 64);
                events.push(SubmitEvent {
                    at: DramCycle::new(c),
                    thread: ThreadId::new(t),
                    kind,
                    phys,
                });
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(channels: usize, threads: usize) -> EngineSpec {
        let mut spec = EngineSpec::paper(channels, threads);
        spec.epoch_cycles = 128;
        spec.log_capacity = Some(100_000);
        spec
    }

    #[test]
    fn serial_and_parallel_reports_are_identical() {
        let spec = small_spec(4, 4);
        let events = synthetic_workload(4, 3_000, 0.4, 7);
        let serial = simulate_serial(&spec, &events).unwrap();
        for threads in [2, 3, 4, 8] {
            let parallel = simulate_parallel(&spec, &events, threads).unwrap();
            assert_eq!(serial, parallel, "{threads} worker threads diverged");
        }
    }

    #[test]
    fn schedule_fully_drains_and_conserves_requests() {
        let spec = small_spec(2, 2);
        let events = synthetic_workload(2, 2_000, 0.3, 11);
        let report = simulate_serial(&spec, &events).unwrap();
        assert_eq!(report.unsubmitted, 0);
        assert_eq!(report.total_completed(), events.len());
        let completed: u64 = report
            .per_thread
            .iter()
            .map(|s| s.reads_completed + s.writes_completed)
            .sum();
        assert_eq!(completed as usize, events.len());
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let spec = small_spec(3, 2);
        let events = synthetic_workload(2, 1_500, 0.5, 13);
        let a = simulate_parallel(&spec, &events, 3).unwrap();
        let b = simulate_parallel(&spec, &events, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn epoch_length_does_not_change_workload_results() {
        // The stop cycle is epoch-aligned, and an idle controller keeps
        // issuing unowned commands (closed-row precharges, refresh), so
        // the command-log *tail* legitimately depends on the epoch
        // length. Everything the workload determines — per-thread stats
        // and completions — must not.
        let mut spec = small_spec(2, 2);
        let events = synthetic_workload(2, 1_000, 0.4, 17);
        let baseline = simulate_serial(&spec, &events).unwrap();
        for epoch in [1, 7, 64, 4096] {
            spec.epoch_cycles = epoch;
            let report = simulate_parallel(&spec, &events, 2).unwrap();
            assert_eq!(
                (&report.per_thread, &report.completions),
                (&baseline.per_thread, &baseline.completions),
                "epoch {epoch} changed simulation results"
            );
        }
    }

    #[test]
    fn observed_run_matches_unobserved_simulation() {
        // Attaching observers must not perturb the simulation: every
        // non-observational report field is bit-identical.
        let mut spec = small_spec(2, 2);
        let events = synthetic_workload(2, 1_500, 0.4, 19);
        let plain = simulate_serial(&spec, &events).unwrap();
        spec.event_capacity = Some(1 << 20);
        let observed = simulate_serial(&spec, &events).unwrap();
        assert!(plain.observations.is_none());
        let obs = observed.observations.as_ref().unwrap();
        assert_eq!(plain.per_thread, observed.per_thread);
        assert_eq!(plain.completions, observed.completions);
        assert_eq!(plain.command_logs, observed.command_logs);
        assert_eq!(plain.cycles, observed.cycles);
        // The event stream is consistent with the report: completion
        // counts agree per thread.
        for (t, stats) in observed.per_thread.iter().enumerate() {
            let sink = obs.metrics.thread(t as u32);
            assert_eq!(sink.reads_completed, stats.reads_completed);
            assert_eq!(sink.writes_completed, stats.writes_completed);
            assert_eq!(sink.nacks, stats.nacks);
        }
        assert_eq!(obs.event_streams.len(), spec.num_channels);
        assert!(obs.total_events() > 0);
    }

    #[test]
    fn observed_serial_and_parallel_streams_are_bit_identical() {
        let mut spec = small_spec(3, 3);
        spec.event_capacity = Some(1 << 20);
        let events = synthetic_workload(3, 2_000, 0.4, 29);
        let serial = simulate_serial(&spec, &events).unwrap();
        for threads in [2, 3, 5] {
            let parallel = simulate_parallel(&spec, &events, threads).unwrap();
            assert_eq!(serial, parallel, "{threads} workers diverged");
        }
    }

    #[test]
    fn interference_workload_shapes_traffic() {
        let events = interference_workload(3, 2_000, 0.05, 0.5, 31);
        let qos: Vec<_> = events
            .iter()
            .filter(|e| e.thread == ThreadId::new(0))
            .collect();
        let heavy = events.len() - qos.len();
        assert!(!qos.is_empty());
        assert!(heavy > qos.len() * 3, "{heavy} vs {}", qos.len());
        assert!(qos.iter().all(|e| e.kind == RequestKind::Read));
        assert!(qos.iter().all(|e| e.phys < (1 << 10) * 64));
        // Sorted by cycle, as the engine requires.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn realtime_workload_respects_budgets() {
        use crate::config::RegulationConfig;
        let reg = RegulationConfig::new(400)
            .rt_class(4, None)
            .rt_class(2, None)
            .best_effort()
            .best_effort();
        let events = realtime_workload(&reg, 4, 4_000, 0.8, 47);
        // Sorted by cycle, as the engine requires.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        // Each RT thread never exceeds its budget in any regulator window.
        for (t, budget) in [(0u32, 4u64), (1, 2)] {
            for w in 0..10 {
                let in_window = events
                    .iter()
                    .filter(|e| e.thread == ThreadId::new(t) && (e.at.as_u64() - 1) / 400 == w)
                    .count() as u64;
                assert!(
                    in_window <= budget,
                    "thread {t} submitted {in_window} > budget {budget} in window {w}"
                );
            }
        }
        // RT traffic is read-only; best-effort floods far harder.
        let rt: Vec<_> = events.iter().filter(|e| e.thread.as_u32() < 2).collect();
        let be = events.len() - rt.len();
        assert!(rt.iter().all(|e| e.kind == RequestKind::Read));
        assert!(!rt.is_empty());
        assert!(be > rt.len() * 10, "{be} vs {}", rt.len());
    }

    #[test]
    fn unsorted_schedule_rejected() {
        let spec = small_spec(1, 1);
        let events = vec![
            SubmitEvent {
                at: DramCycle::new(10),
                thread: ThreadId::new(0),
                kind: RequestKind::Read,
                phys: 0,
            },
            SubmitEvent {
                at: DramCycle::new(5),
                thread: ThreadId::new(0),
                kind: RequestKind::Read,
                phys: 64,
            },
        ];
        assert!(simulate_serial(&spec, &events).is_err());
    }

    #[test]
    fn invalid_specs_rejected() {
        let events = synthetic_workload(1, 10, 0.5, 1);
        let mut spec = small_spec(0, 1);
        assert!(simulate_serial(&spec, &events).is_err());
        spec = small_spec(1, 1);
        spec.epoch_cycles = 0;
        assert!(simulate_serial(&spec, &events).is_err());
        spec = small_spec(1, 1);
        assert!(simulate_parallel(&spec, &events, 0).is_err());
    }

    #[test]
    fn max_cycles_bounds_runaway_schedules() {
        let mut spec = small_spec(1, 1);
        spec.max_cycles = 256;
        // A schedule far too dense to finish in 256 cycles.
        let events = synthetic_workload(1, 10_000, 1.0, 3);
        let report = simulate_serial(&spec, &events).unwrap();
        assert_eq!(report.cycles, 256);
        assert!(report.unsubmitted > 0);
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let mut spec = small_spec(2, 2);
        spec.event_capacity = Some(1 << 16);
        let events = synthetic_workload(2, 1_500, 0.4, 41);
        let reference = simulate_serial(&spec, &events).unwrap();
        // Kill points cover mid-epoch, epoch boundaries (epoch = 128),
        // the first cycle, and the tail of the schedule.
        for kill_at in [1, 100, 128, 129, 777, 1_500] {
            let bytes = simulate_serial_checkpointed(&spec, &events, kill_at).unwrap();
            let resumed = resume_serial(&spec, &events, &bytes).unwrap();
            assert_eq!(resumed.cycles, reference.cycles, "kill {kill_at}: cycles");
            assert_eq!(
                resumed.per_thread, reference.per_thread,
                "kill {kill_at}: per_thread"
            );
            assert_eq!(
                resumed.completions, reference.completions,
                "kill {kill_at}: completions"
            );
            assert_eq!(
                resumed.command_logs, reference.command_logs,
                "kill {kill_at}: logs"
            );
            assert_eq!(
                resumed.unsubmitted, reference.unsubmitted,
                "kill {kill_at}: unsubmitted"
            );
            assert_eq!(
                resumed.rejected, reference.rejected,
                "kill {kill_at}: rejected"
            );
            assert_eq!(resumed.shed, reference.shed, "kill {kill_at}: shed");
            assert_eq!(
                resumed.stepped_cycles, reference.stepped_cycles,
                "kill {kill_at}: stepped"
            );
            assert_eq!(
                resumed.skipped_cycles, reference.skipped_cycles,
                "kill {kill_at}: skipped"
            );
            assert_eq!(
                resumed.observations, reference.observations,
                "kill {kill_at}: observations"
            );
            assert_eq!(resumed, reference, "kill at {kill_at} diverged");
        }
    }

    #[test]
    fn resume_rejects_wrong_workload_and_truncation() {
        let spec = small_spec(2, 2);
        let events = synthetic_workload(2, 800, 0.3, 43);
        let bytes = simulate_serial_checkpointed(&spec, &events, 500).unwrap();
        // A different workload changes the fingerprint: typed rejection.
        let other = synthetic_workload(2, 800, 0.3, 44);
        assert!(matches!(
            resume_serial(&spec, &other, &bytes),
            Err(ResumeError::Snapshot(SnapshotError::ConfigMismatch { .. }))
        ));
        // A different spec too.
        let mut wrong = spec.clone();
        wrong.config.scheduler = SchedulerKind::FrFcfs;
        assert!(matches!(
            resume_serial(&wrong, &events, &bytes),
            Err(ResumeError::Snapshot(SnapshotError::ConfigMismatch { .. }))
        ));
        // Truncated bytes: typed error, never a panic.
        assert!(matches!(
            resume_serial(&spec, &events, &bytes[..bytes.len() / 2]),
            Err(ResumeError::Snapshot(_))
        ));
        // Unreachable kill cycles are refused up front.
        assert!(simulate_serial_checkpointed(&spec, &events, 0).is_err());
        assert!(simulate_serial_checkpointed(&spec, &events, spec.max_cycles + 1).is_err());
    }

    #[test]
    fn engine_matches_multichannel_controller() {
        // The engine's per-channel submission policy mirrors driving a
        // MultiChannelController with the same head-of-line retry loop;
        // with NACK-free load the completions must agree exactly.
        let spec = small_spec(2, 2);
        let events = synthetic_workload(2, 800, 0.1, 23);
        let report = simulate_serial(&spec, &events).unwrap();

        let mut m = MultiChannelController::new(
            spec.num_channels,
            spec.config.clone(),
            spec.geometry,
            spec.timing,
        )
        .unwrap();
        let mut queue: VecDeque<SubmitEvent> = events.iter().copied().collect();
        let mut done: Vec<Completion> = Vec::new();
        let mut c = 0u64;
        while (!queue.is_empty() || !m.is_idle()) && c < spec.max_cycles {
            c += 1;
            let now = DramCycle::new(c);
            while let Some(ev) = queue.front() {
                if ev.at.as_u64() > c {
                    break;
                }
                let ev = *ev;
                if m.try_submit(ev.thread, ev.kind, ev.phys, now).is_ok() {
                    queue.pop_front();
                } else {
                    break;
                }
            }
            done.extend(m.step(now));
        }
        let mut engine_done: Vec<Completion> =
            report.completions.iter().flatten().copied().collect();
        let key = |x: &Completion| (x.finish, x.id);
        engine_done.sort_by_key(key);
        done.sort_by_key(key);
        assert_eq!(engine_done, done);
    }
}
