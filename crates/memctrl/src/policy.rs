//! Scheduling policies and priority ordering.
//!
//! All schedulers in the paper share one structural skeleton (bank
//! schedulers feeding a channel scheduler) and differ only in their
//! priority policy:
//!
//! * **FR-FCFS** — 1) ready commands first, 2) CAS over RAS, 3) earliest
//!   *arrival time* first (Rixner et al.),
//! * **FR-VFTF** — same, but 3) earliest *virtual finish time* first,
//! * **FQ-VFTF** — FR-VFTF plus the FQ bank scheduling algorithm of
//!   Section 3.3 that bounds priority-inversion blocking time,
//! * **FCFS** — a strict in-order (per bank) baseline without first-ready
//!   reordering, included as an extra ablation point,
//! * **BLISS** — blacklisting (ISSUE 7): a thread that receives too many
//!   *consecutive* bank services is blacklisted until the next clearing
//!   interval; non-blacklisted requests are prioritized, with FR-FCFS
//!   order among peers,
//! * **SD-VFTF** — slowdown-driven VFTF (ISSUE 7): each thread's virtual
//!   finish time is divided by its online slowdown estimate (measured
//!   shared latency over an intrinsic alone-service model), so the
//!   currently-most-slowed-down thread sorts first among peers.

use crate::request::RequestId;
use std::cmp::Ordering;

/// Which memory scheduling algorithm the controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Strict per-bank in-order scheduling (no first-ready reordering).
    Fcfs,
    /// First-Ready First-Come-First-Served (the paper's baseline).
    FrFcfs,
    /// First-Ready Virtual-Finish-Time-First (VFTF priority without the FQ
    /// bank scheduler — the paper's intermediate design point).
    FrVftf,
    /// The full Fair Queuing memory scheduler: VFTF priority plus the
    /// bounded-priority-inversion bank scheduling algorithm.
    FqVftf,
    /// Blacklisting scheduler (BLISS): per-thread consecutive-service
    /// streak counter; crossing `bliss_threshold` blacklists the thread
    /// until the next `bliss_clear_interval` boundary. Non-blacklisted
    /// requests beat blacklisted ones; FR-FCFS order among peers.
    Bliss,
    /// Slowdown-driven VFTF: virtual finish times are divided by each
    /// thread's online slowdown estimate (measured shared latency over an
    /// intrinsic alone-service model), prioritizing the max-slowdown
    /// thread.
    SdVftf,
}

impl SchedulerKind {
    /// True if request priority is the virtual finish time (otherwise it is
    /// the arrival time).
    pub fn uses_vftf(self) -> bool {
        matches!(
            self,
            SchedulerKind::FrVftf | SchedulerKind::FqVftf | SchedulerKind::SdVftf
        )
    }

    /// True if bank schedulers may reorder requests to exploit ready
    /// commands (first-ready scheduling).
    pub fn uses_first_ready(self) -> bool {
        !matches!(self, SchedulerKind::Fcfs)
    }

    /// True if the FQ bank scheduling algorithm (Section 3.3) is active.
    pub fn uses_fq_bank_scheduler(self) -> bool {
        matches!(self, SchedulerKind::FqVftf)
    }

    /// True if the scheduler's priority keys are compatible with the
    /// O(log n) indexed scan ([`ScanKind::Indexed`]).
    ///
    /// BLISS is the exception: its blacklist flips change request
    /// *ordering* (the tier) dynamically between scheduling decisions,
    /// which the static-key row-group heaps cannot represent, so it is
    /// restricted to [`ScanKind::Linear`] (enforced by
    /// `McConfig::validate`).
    pub fn supports_indexed_scan(self) -> bool {
        !matches!(self, SchedulerKind::Bliss)
    }

    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FrFcfs => "FR-FCFS",
            SchedulerKind::FrVftf => "FR-VFTF",
            SchedulerKind::FqVftf => "FQ-VFTF",
            SchedulerKind::Bliss => "BLISS",
            SchedulerKind::SdVftf => "SD-VFTF",
        }
    }

    /// All scheduler kinds, for sweeps.
    pub fn all() -> [SchedulerKind; 6] {
        [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::FrVftf,
            SchedulerKind::FqVftf,
            SchedulerKind::Bliss,
            SchedulerKind::SdVftf,
        ]
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The FQ bank scheduler's configurable bound `x` on priority-inversion
/// blocking time (Section 3.3): after a bank has been active for `x`
/// cycles, the bank scheduler locks onto the earliest-virtual-finish-time
/// request and waits for its command to become ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InversionBound {
    /// Lock after the bank has been active `t_RAS` cycles — the paper's
    /// choice ("a tight bound ... which offers better QoS, but may decrease
    /// data bus utilization").
    #[default]
    TRas,
    /// Lock after a fixed number of active cycles.
    Cycles(u64),
    /// Never lock (degenerates FQ-VFTF into FR-VFTF); useful for ablation.
    Unbounded,
}

impl InversionBound {
    /// Resolves the bound to cycles given the row-active time `t_ras`.
    /// `None` means unbounded.
    pub fn resolve(self, t_ras: u64) -> Option<u64> {
        match self {
            InversionBound::TRas => Some(t_ras),
            InversionBound::Cycles(x) => Some(x),
            InversionBound::Unbounded => None,
        }
    }
}

/// Row-buffer management policy (Section 2.2).
///
/// The paper uses a **closed** row policy throughout ("it has been shown
/// to perform better than an open row policy in multiprocessor systems"),
/// keeping the open policy available as an ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RowPolicy {
    /// Close the row (precharge) once no pending request targets it.
    #[default]
    Closed,
    /// Leave rows open until a conflicting request forces a precharge.
    Open,
}

/// Transaction/write buffer organisation.
///
/// The paper statically partitions the controller's buffers per thread and
/// notes that "a more flexible partitioning of memory controller's buffers
/// is possible and is a topic for future research". The shared mode
/// implements the obvious flexible design — one pool any thread may fill —
/// and the ablation shows why the paper partitions: an aggressive thread
/// can occupy the whole pool and starve others *at admission*, defeating
/// the scheduler's QoS no matter how fair its priorities are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BufferSharing {
    /// Per-thread static partitions with independent NACK back-pressure
    /// (the paper's design).
    #[default]
    Partitioned,
    /// One shared pool sized `num_threads x per-thread capacity`;
    /// admission is first-come-first-served across threads.
    Shared,
}

/// Refresh scheduling policy.
///
/// DDR2 devices tolerate postponing a bounded number of refresh commands
/// (up to eight for most parts) as long as the average interval is
/// maintained. A strict controller refreshes the moment the deadline
/// arrives — simple, but it can interrupt a burst of useful work for
/// tRFC cycles. A deferred controller delays refresh while demand
/// traffic is pending, catching up during idle gaps or when the
/// postponement budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RefreshPolicy {
    /// Refresh immediately at each deadline (the baseline behaviour).
    #[default]
    Strict,
    /// Postpone up to `max_postponed` refreshes while demand requests are
    /// pending; refresh opportunistically when the controller is idle.
    Deferred {
        /// Maximum refreshes owed before the controller forces catch-up.
        max_postponed: u32,
    },
}

/// When a request's virtual finish time is computed (Section 3.2).
///
/// The paper describes two options and evaluates the second:
///
/// * **at arrival** — assume an *average* bank service requirement for
///   every request and bind the VFT (and update the VTMS registers) using
///   it; simple, but "likely to penalize threads that have lower average
///   bank service requirements, e.g., threads with a large number of open
///   row buffer hits";
/// * **at first-ready** — bind the VFT just before the request is
///   scheduled to begin service, classifying the actual bank state
///   (Table 3); more accurate, the paper's evaluated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VftBinding {
    /// Bind lazily when the request first becomes a ready scheduling
    /// candidate, using the bank's state at that moment (the paper's
    /// evaluated second solution).
    #[default]
    FirstReady,
    /// Bind at arrival using the closed-bank average service time
    /// (`t_RCD + t_CL`) regardless of actual bank state (the paper's
    /// first solution, kept as an ablation).
    AtArrival,
}

/// Bank-scheduler candidate selection implementation (ISSUE 6).
///
/// Both paths are semantically identical — the differential suite
/// (`select_differential.rs`) proves bit-identity of event streams,
/// completions, and metrics — but scale differently: the linear scan is
/// O(queue) per scheduling decision, the indexed path O(log queue) via
/// per-row heaps and a tournament tree (see [`crate::select`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanKind {
    /// The reference implementation: rescan the bank queue in admission
    /// order on every evaluation. Retained as the oracle for the
    /// differential suite and the scaling figure's degrading baseline.
    Linear,
    /// Index-keyed selection: row-group heaps plus a tournament tree,
    /// O(log n) select/update (the default).
    #[default]
    Indexed,
}

/// The priority of a candidate command, ordered per the paper: ready beats
/// not-ready, then lower tier beats higher (tier is 0 for everything except
/// BLISS-blacklisted threads), CAS beats RAS, then the smaller key (arrival
/// time or virtual finish time) wins, with the admission id as a
/// deterministic final tiebreaker.
///
/// `Priority` is ordered so that **smaller is better** (fits
/// `Iterator::min`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Priority {
    /// Whether the command can issue this cycle.
    pub ready: bool,
    /// Scheduler-assigned priority class; 0 is best. Only BLISS uses a
    /// nonzero tier (1 for blacklisted threads).
    pub tier: u8,
    /// Whether the command is a CAS (read/write).
    pub cas: bool,
    /// Arrival time (FCFS variants) or virtual finish time (VFTF variants).
    pub key: f64,
    /// Admission-order tiebreaker.
    pub id: RequestId,
}

impl Priority {
    fn rank_tuple(&self) -> (u8, u8, u8) {
        (u8::from(!self.ready), self.tier, u8::from(!self.cas))
    }
}

impl Eq for Priority {}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank_tuple()
            .cmp(&other.rank_tuple())
            .then_with(|| self.key.partial_cmp(&other.key).unwrap_or(Ordering::Equal))
            .then_with(|| self.id.cmp(&other.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ready: bool, cas: bool, key: f64, id: u64) -> Priority {
        Priority {
            ready,
            tier: 0,
            cas,
            key,
            id: RequestId::new(id),
        }
    }

    #[test]
    fn ready_dominates() {
        assert!(p(true, false, 100.0, 5) < p(false, true, 1.0, 1));
    }

    #[test]
    fn cas_dominates_key() {
        assert!(p(true, true, 100.0, 5) < p(true, false, 1.0, 1));
    }

    #[test]
    fn tier_dominates_cas_and_key() {
        let blacklisted_cas = Priority {
            tier: 1,
            ..p(true, true, 1.0, 1)
        };
        let clean_ras = p(true, false, 100.0, 9);
        assert!(clean_ras < blacklisted_cas);
    }

    #[test]
    fn ready_dominates_tier() {
        let blacklisted_ready = Priority {
            tier: 1,
            ..p(true, true, 100.0, 9)
        };
        let clean_unready = p(false, true, 1.0, 1);
        assert!(blacklisted_ready < clean_unready);
    }

    #[test]
    fn key_dominates_id() {
        assert!(p(true, true, 1.0, 9) < p(true, true, 2.0, 1));
    }

    #[test]
    fn id_breaks_ties() {
        assert!(p(true, true, 1.0, 1) < p(true, true, 1.0, 2));
    }

    #[test]
    fn min_selects_best() {
        let worst = p(false, false, 0.0, 0);
        let best = p(true, true, 50.0, 3);
        let mid = p(true, false, 10.0, 1);
        let got = [worst, mid, best].into_iter().min().unwrap();
        assert_eq!(got, best);
    }

    #[test]
    fn kind_predicates() {
        assert!(SchedulerKind::FqVftf.uses_vftf());
        assert!(SchedulerKind::FrVftf.uses_vftf());
        assert!(!SchedulerKind::FrFcfs.uses_vftf());
        assert!(SchedulerKind::FrFcfs.uses_first_ready());
        assert!(!SchedulerKind::Fcfs.uses_first_ready());
        assert!(SchedulerKind::FqVftf.uses_fq_bank_scheduler());
        assert!(!SchedulerKind::FrVftf.uses_fq_bank_scheduler());
        assert!(SchedulerKind::SdVftf.uses_vftf());
        assert!(!SchedulerKind::Bliss.uses_vftf());
        assert!(SchedulerKind::Bliss.uses_first_ready());
        assert!(!SchedulerKind::SdVftf.uses_fq_bank_scheduler());
        assert!(!SchedulerKind::Bliss.supports_indexed_scan());
        for kind in SchedulerKind::all() {
            assert_eq!(kind.supports_indexed_scan(), kind != SchedulerKind::Bliss);
        }
    }

    #[test]
    fn inversion_bound_resolution() {
        assert_eq!(InversionBound::TRas.resolve(18), Some(18));
        assert_eq!(InversionBound::Cycles(7).resolve(18), Some(7));
        assert_eq!(InversionBound::Unbounded.resolve(18), None);
        assert_eq!(InversionBound::default(), InversionBound::TRas);
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(SchedulerKind::FrFcfs.to_string(), "FR-FCFS");
        assert_eq!(SchedulerKind::FqVftf.to_string(), "FQ-VFTF");
        assert_eq!(SchedulerKind::Bliss.to_string(), "BLISS");
        assert_eq!(SchedulerKind::SdVftf.to_string(), "SD-VFTF");
        assert_eq!(SchedulerKind::all().len(), 6);
    }
}
