//! Per-thread and controller-wide statistics.

use crate::config::ShareTree;
use crate::request::ThreadId;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Statistics accumulated for one hardware thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Read requests accepted into the controller.
    pub reads_accepted: u64,
    /// Write requests accepted into the controller.
    pub writes_accepted: u64,
    /// Read requests whose data has returned.
    pub reads_completed: u64,
    /// Write requests issued to the SDRAM.
    pub writes_completed: u64,
    /// Sum of read latencies (arrival to last data beat), in DRAM cycles.
    pub read_latency_total: u64,
    /// Data-bus cycles consumed by this thread's bursts.
    pub bus_busy_cycles: u64,
    /// Requests refused with a NACK (back-pressure events).
    pub nacks: u64,
    /// CAS commands that hit an already-open row (no prior command needed).
    pub row_hits: u64,
    /// CAS commands that needed only an activate (bank was precharged).
    pub row_closed: u64,
    /// CAS commands that needed precharge + activate (bank conflict).
    pub row_conflicts: u64,
    /// Accepted requests removed by fault injection and never serviced.
    pub requests_dropped: u64,
    /// Starvation-watchdog firings (one per detected stall episode).
    pub starvations: u64,
    /// Requests refused by the admission throttle (a subset of `nacks`:
    /// every throttle refusal also counts as a NACK).
    pub throttle_nacks: u64,
    /// Requests dropped terminally by the tiered load shedder. Not part
    /// of `nacks` — a shed is a drop-class refusal, never retried.
    pub requests_shed: u64,
    /// Estimated cycles this thread's completed requests would have taken
    /// running *alone* (intrinsic closed-bank DRAM service model; see
    /// DESIGN.md §16 for the model's known bias).
    pub alone_cycles_est: u64,
    /// Measured cycles the same requests actually took under sharing
    /// (arrival to completion).
    pub shared_cycles: u64,
}

impl ThreadStats {
    /// Average read latency in DRAM cycles; 0.0 if no reads completed.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.read_latency_total as f64 / self.reads_completed as f64
        }
    }

    /// Fraction of this thread's serviced CAS commands that were row-buffer
    /// hits; 0.0 if none completed.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Estimated memory slowdown: measured shared cycles over the
    /// alone-service estimate, clamped to at least 1.0 (a thread cannot be
    /// sped up by interference under this model). Returns 1.0 when the
    /// thread completed nothing.
    pub fn slowdown(&self) -> f64 {
        if self.alone_cycles_est == 0 {
            1.0
        } else {
            (self.shared_cycles as f64 / self.alone_cycles_est as f64).max(1.0)
        }
    }

    /// This thread's data-bus utilization over `elapsed` DRAM cycles.
    pub fn bus_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / elapsed as f64
        }
    }

    /// Adds every counter of `other` into `self` — the aggregation used
    /// for tenant-level rollups and multi-shard report merging. Summing
    /// is exact (all counters are integers), so tenant totals conserve:
    /// a tenant's merged stats equal the field-wise sum of its members'.
    pub fn merge(&mut self, other: &ThreadStats) {
        self.reads_accepted += other.reads_accepted;
        self.writes_accepted += other.writes_accepted;
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.read_latency_total += other.read_latency_total;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.nacks += other.nacks;
        self.row_hits += other.row_hits;
        self.row_closed += other.row_closed;
        self.row_conflicts += other.row_conflicts;
        self.requests_dropped += other.requests_dropped;
        self.starvations += other.starvations;
        self.throttle_nacks += other.throttle_nacks;
        self.requests_shed += other.requests_shed;
        self.alone_cycles_est += other.alone_cycles_est;
        self.shared_cycles += other.shared_cycles;
    }
}

/// Statistics for all threads of a controller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McStats {
    threads: Vec<ThreadStats>,
}

impl McStats {
    /// Creates zeroed statistics for `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        McStats {
            threads: vec![ThreadStats::default(); num_threads],
        }
    }

    /// Stats for one thread.
    pub fn thread(&self, t: ThreadId) -> &ThreadStats {
        &self.threads[t.as_usize()]
    }

    /// Mutable stats for one thread (crate-internal).
    pub(crate) fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadStats {
        &mut self.threads[t.as_usize()]
    }

    /// Zeroes every thread's counters (warmup exclusion).
    pub fn reset(&mut self) {
        for t in &mut self.threads {
            *t = ThreadStats::default();
        }
    }

    /// Iterator over `(ThreadId, &ThreadStats)`.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, &ThreadStats)> {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, s)| (ThreadId::new(i as u32), s))
    }

    /// Total reads completed across threads.
    pub fn total_reads_completed(&self) -> u64 {
        self.threads.iter().map(|t| t.reads_completed).sum()
    }

    /// Total writes completed across threads.
    pub fn total_writes_completed(&self) -> u64 {
        self.threads.iter().map(|t| t.writes_completed).sum()
    }

    /// Number of threads tracked.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Maximum estimated slowdown over threads that completed work
    /// (the unfairness index; 1.0 when the controller was idle).
    pub fn max_slowdown(&self) -> f64 {
        self.threads
            .iter()
            .filter(|t| t.alone_cycles_est > 0)
            .map(|t| t.slowdown())
            .fold(1.0, f64::max)
    }

    /// Harmonic speedup: `n / sum(slowdown_i)` over the `n` threads that
    /// completed work — the balanced fairness/throughput index (1.0 is
    /// ideal, smaller is worse). Returns 1.0 when no thread completed
    /// anything.
    pub fn harmonic_speedup(&self) -> f64 {
        let active: Vec<f64> = self
            .threads
            .iter()
            .filter(|t| t.alone_cycles_est > 0)
            .map(|t| t.slowdown())
            .collect();
        if active.is_empty() {
            1.0
        } else {
            active.len() as f64 / active.iter().sum::<f64>()
        }
    }

    /// Rolls the per-thread counters up to the tenant level of `tree`
    /// (one merged [`ThreadStats`] per tenant, in tenant order).
    ///
    /// # Panics
    ///
    /// Panics if the tree's thread count differs from the tracked thread
    /// count.
    pub fn tenant_totals(&self, tree: &ShareTree) -> Vec<ThreadStats> {
        assert_eq!(
            tree.num_threads(),
            self.threads.len(),
            "share tree covers {} threads, stats track {}",
            tree.num_threads(),
            self.threads.len()
        );
        (0..tree.num_tenants())
            .map(|tenant| {
                let mut total = ThreadStats::default();
                for t in tree.tenant_threads(tenant) {
                    total.merge(&self.threads[t]);
                }
                total
            })
            .collect()
    }
}

impl Snapshot for ThreadStats {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.reads_accepted);
        w.put_u64(self.writes_accepted);
        w.put_u64(self.reads_completed);
        w.put_u64(self.writes_completed);
        w.put_u64(self.read_latency_total);
        w.put_u64(self.bus_busy_cycles);
        w.put_u64(self.nacks);
        w.put_u64(self.row_hits);
        w.put_u64(self.row_closed);
        w.put_u64(self.row_conflicts);
        w.put_u64(self.requests_dropped);
        w.put_u64(self.starvations);
        w.put_u64(self.throttle_nacks);
        w.put_u64(self.requests_shed);
        w.put_u64(self.alone_cycles_est);
        w.put_u64(self.shared_cycles);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.reads_accepted = r.get_u64()?;
        self.writes_accepted = r.get_u64()?;
        self.reads_completed = r.get_u64()?;
        self.writes_completed = r.get_u64()?;
        self.read_latency_total = r.get_u64()?;
        self.bus_busy_cycles = r.get_u64()?;
        self.nacks = r.get_u64()?;
        self.row_hits = r.get_u64()?;
        self.row_closed = r.get_u64()?;
        self.row_conflicts = r.get_u64()?;
        self.requests_dropped = r.get_u64()?;
        self.starvations = r.get_u64()?;
        self.throttle_nacks = r.get_u64()?;
        self.requests_shed = r.get_u64()?;
        self.alone_cycles_est = r.get_u64()?;
        self.shared_cycles = r.get_u64()?;
        Ok(())
    }
}

impl Snapshot for McStats {
    fn save(&self, w: &mut SectionWriter) {
        w.put_seq_len(self.threads.len());
        for t in &self.threads {
            t.save(w);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let n = r.seq_len()?;
        if n != self.threads.len() {
            return Err(r.malformed(format!(
                "stats for {n} threads, controller has {}",
                self.threads.len()
            )));
        }
        for t in &mut self.threads {
            t.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_handles_empty() {
        let s = ThreadStats::default();
        assert_eq!(s.avg_read_latency(), 0.0);
    }

    #[test]
    fn avg_latency_divides() {
        let s = ThreadStats {
            reads_completed: 4,
            read_latency_total: 100,
            ..Default::default()
        };
        assert_eq!(s.avg_read_latency(), 25.0);
    }

    #[test]
    fn bus_utilization_fraction() {
        let s = ThreadStats {
            bus_busy_cycles: 250,
            ..Default::default()
        };
        assert_eq!(s.bus_utilization(1000), 0.25);
        assert_eq!(s.bus_utilization(0), 0.0);
    }

    #[test]
    fn mc_stats_aggregation() {
        let mut m = McStats::new(2);
        m.thread_mut(ThreadId::new(0)).reads_completed = 3;
        m.thread_mut(ThreadId::new(1)).reads_completed = 4;
        assert_eq!(m.total_reads_completed(), 7);
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn merge_sums_every_counter() {
        // Distinct primes per field so a dropped or double-counted field
        // is unmistakable in the sum.
        let a = ThreadStats {
            reads_accepted: 2,
            writes_accepted: 3,
            reads_completed: 5,
            writes_completed: 7,
            read_latency_total: 11,
            bus_busy_cycles: 13,
            nacks: 17,
            row_hits: 19,
            row_closed: 23,
            row_conflicts: 29,
            requests_dropped: 31,
            starvations: 37,
            throttle_nacks: 47,
            requests_shed: 53,
            alone_cycles_est: 41,
            shared_cycles: 43,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            ThreadStats {
                reads_accepted: 4,
                writes_accepted: 6,
                reads_completed: 10,
                writes_completed: 14,
                read_latency_total: 22,
                bus_busy_cycles: 26,
                nacks: 34,
                row_hits: 38,
                row_closed: 46,
                row_conflicts: 58,
                requests_dropped: 62,
                starvations: 74,
                throttle_nacks: 94,
                requests_shed: 106,
                alone_cycles_est: 82,
                shared_cycles: 86,
            }
        );
    }

    #[test]
    fn slowdown_and_fairness_indices() {
        let mut m = McStats::new(3);
        // Thread 0: slowdown 3.0; thread 1: slowdown 1.5; thread 2 idle.
        m.thread_mut(ThreadId::new(0)).alone_cycles_est = 100;
        m.thread_mut(ThreadId::new(0)).shared_cycles = 300;
        m.thread_mut(ThreadId::new(1)).alone_cycles_est = 200;
        m.thread_mut(ThreadId::new(1)).shared_cycles = 300;
        assert_eq!(m.thread(ThreadId::new(0)).slowdown(), 3.0);
        assert_eq!(m.thread(ThreadId::new(1)).slowdown(), 1.5);
        assert_eq!(m.thread(ThreadId::new(2)).slowdown(), 1.0);
        assert_eq!(m.max_slowdown(), 3.0);
        // Idle thread excluded: 2 / (3.0 + 1.5).
        assert!((m.harmonic_speedup() - 2.0 / 4.5).abs() < 1e-12);
        // Shared faster than the (biased) alone estimate clamps to 1.0.
        m.thread_mut(ThreadId::new(2)).alone_cycles_est = 100;
        m.thread_mut(ThreadId::new(2)).shared_cycles = 50;
        assert_eq!(m.thread(ThreadId::new(2)).slowdown(), 1.0);
        // Empty controller is the identity point.
        let idle = McStats::new(4);
        assert_eq!(idle.max_slowdown(), 1.0);
        assert_eq!(idle.harmonic_speedup(), 1.0);
    }

    #[test]
    fn tenant_totals_roll_up_members() {
        use crate::config::TenantSpec;
        let tree = ShareTree::symmetric(2, 2); // tenants {0,1} x 2 threads
        let mut m = McStats::new(4);
        for t in 0..4u32 {
            m.thread_mut(ThreadId::new(t)).reads_completed = u64::from(t) + 1;
            m.thread_mut(ThreadId::new(t)).nacks = 10 * u64::from(t);
        }
        let tenants = m.tenant_totals(&tree);
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].reads_completed, 1 + 2);
        assert_eq!(tenants[1].reads_completed, 3 + 4);
        assert_eq!(tenants[0].nacks, 10);
        assert_eq!(tenants[1].nacks, 20 + 30);
        // Conservation: tenant sums equal the global totals.
        let total: u64 = tenants.iter().map(|t| t.reads_completed).sum();
        assert_eq!(total, m.total_reads_completed());
        // Mismatched tree panics.
        let narrow = ShareTree {
            tenants: vec![TenantSpec::equal(0.5, 3)],
        };
        let r = std::panic::catch_unwind(|| m.tenant_totals(&narrow));
        assert!(r.is_err());
    }
}
