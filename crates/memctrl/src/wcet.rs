//! Analytic worst-case access latency for the regulated real-time mode
//! (ISSUE 9).
//!
//! Derives a closed-form per-request latency bound from the paper's
//! Table 6 timing parameters, the bank-partition geometry, and the
//! [`crate::config::RegulationConfig`] budgets, in the style of the
//! WCET-bounded SDRAM arbiters of PAPERS.md (Dynamic Priority Queue,
//! Per-Bank Bandwidth Regulation). The derivation is term-by-term in
//! DESIGN.md §18; the short version:
//!
//! * **own service + backlog** — with bank partitioning, only the
//!   thread's own (≤ budget) requests share its banks, each costing at
//!   most a conflict service plus the data burst, plus per-command
//!   non-preemptive channel blocking from already-issued best-effort
//!   commands,
//! * **cross-RT channel interference** — other in-budget real-time
//!   threads can beat the request on the shared channel, but regulation
//!   caps them at their budgets per period,
//! * **refresh** — every `tREFI` window can stall the rank for
//!   `tRFC + tRP`,
//! * **regulator delay** — service spill across a period boundary can
//!   demote the thread for at most one period,
//! * **`extra_blocking`** — caller-supplied allowance for injected
//!   faults (e.g. refresh-pressure windows from a
//!   [`fqms_sim::fault::FaultPlan`]).
//!
//! The interference and refresh terms depend on the window length they
//! are charged over, so the bound is the least fixed point of the
//! response-time recurrence, computed by saturating iteration
//! ([`bound_for`] returns `None` if it fails to converge — the
//! configuration is then not schedulable and no bound is claimed).
//!
//! **Validity assumptions** (enforced by the release gate's workload,
//! documented in DESIGN.md §18): bank partitioning is enabled and the
//! partition slices do not overlap (threads ≤ total banks), and each
//! real-time thread submits at most `budget` requests per period. The
//! bound is deliberately conservative — tightness is traded for an
//! argument every term of which survives adversarial best-effort floods,
//! NACK storms, and refresh pressure (verified empirically by
//! `tests/rt_wcet.rs` and the `latency_cdf` gate).

use crate::config::RegulationConfig;
use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;

/// Iteration cap for the response-time fixed point; configurations that
/// have not converged by then are declared unschedulable.
const MAX_ITERATIONS: u32 = 256;

/// Bounds above this are meaningless for a simulator with bounded
/// horizons; treat them as divergence.
const BOUND_CAP: u64 = 1 << 48;

/// The per-term decomposition of a computed bound (all in DRAM cycles),
/// for documentation, figures, and debugging. `total()` is the value
/// [`bound_for`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcetBreakdown {
    /// Own worst-case bank service + backlog: `budget` requests, each a
    /// row conflict plus the data burst plus per-command blocking.
    pub own_service: u64,
    /// Cross-RT channel interference accrued over the response window.
    pub rt_interference: u64,
    /// Refresh stalls accrued over the response window.
    pub refresh: u64,
    /// One replenish period: worst-case demotion from service spilling
    /// across a period boundary.
    pub regulator_delay: u64,
    /// Caller-supplied allowance for injected faults.
    pub extra_blocking: u64,
}

impl WcetBreakdown {
    /// The total bound (saturating sum of the terms).
    pub fn total(&self) -> u64 {
        self.own_service
            .saturating_add(self.rt_interference)
            .saturating_add(self.refresh)
            .saturating_add(self.regulator_delay)
            .saturating_add(self.extra_blocking)
    }
}

/// Analytic worst-case latency bound, in DRAM cycles, for an in-budget
/// request of real-time thread `thread` under `reg`, with an
/// `extra_blocking` allowance for injected faults.
///
/// Returns `None` when no bound can be claimed: the thread is not a
/// real-time class, its budget is zero (pure best-effort demotion),
/// partitioning is disabled or the partition slices would overlap
/// (`classes.len() > geometry.total_banks()`), or the response-time
/// iteration diverges.
///
/// # Example
///
/// ```
/// use fqms_dram::device::Geometry;
/// use fqms_dram::timing::TimingParams;
/// use fqms_memctrl::config::RegulationConfig;
/// use fqms_memctrl::wcet::bound_for;
///
/// let reg = RegulationConfig::new(10_000)
///     .rt_class(8, None)      // thread 0: 8 requests / 10k cycles
///     .best_effort()          // thread 1: unregulated aggressor
///     .best_effort();         // thread 2: unregulated aggressor
/// let bound = bound_for(
///     &TimingParams::ddr2_800(),
///     &Geometry::paper(),
///     &reg,
///     0,
///     0,
/// )
/// .expect("thread 0 is a budgeted RT class");
/// assert!(bound > 0);
/// // Best-effort threads carry no bound.
/// assert_eq!(
///     bound_for(&TimingParams::ddr2_800(), &Geometry::paper(), &reg, 1, 0),
///     None
/// );
/// ```
pub fn bound_for(
    timing: &TimingParams,
    geometry: &Geometry,
    reg: &RegulationConfig,
    thread: u32,
    extra_blocking: u64,
) -> Option<u64> {
    breakdown_for(timing, geometry, reg, thread, extra_blocking).map(|b| b.total())
}

/// Like [`bound_for`], but returns the per-term [`WcetBreakdown`].
pub fn breakdown_for(
    timing: &TimingParams,
    geometry: &Geometry,
    reg: &RegulationConfig,
    thread: u32,
    extra_blocking: u64,
) -> Option<WcetBreakdown> {
    let t = thread as usize;
    let class = reg.classes.get(t)?;
    if !class.rt || class.budget == 0 || reg.period == 0 {
        return None;
    }
    // The intra-bank terms assume no foreign thread ever touches this
    // thread's banks: partitioning must be on and injective.
    if !reg.partition || reg.classes.len() as u64 > u64::from(geometry.total_banks()) {
        return None;
    }

    // Worst own bank service: precharge a conflicting row, activate,
    // CAS, and occupy the data bus for the burst.
    let s_worst = timing.service_conflict().saturating_add(timing.burst);
    // Non-preemptive blocking per command issue: a best-effort command
    // issued the cycle before ours became ready can hold the channel for
    // a write's data + turnaround, and its activate can push ours by
    // tRRD (plus the four-activate window when enabled). Tiers cannot
    // preempt a command already in flight.
    let c_np = timing
        .t_wl
        .saturating_add(timing.burst)
        .saturating_add(timing.t_wtr)
        .saturating_add(timing.t_rrd)
        .saturating_add(timing.t_faw);
    // Up to three commands per request (precharge, activate, CAS), each
    // exposed to one non-preemptive hold.
    let per_request = s_worst.saturating_add(c_np.saturating_mul(3));
    let own_service = class.budget.saturating_mul(per_request);

    // Each competing in-budget RT service can cost us a bus burst, a
    // CAS gap, an activate gap, and three channel-issue slots.
    let rt_budget_other: u64 = reg
        .classes
        .iter()
        .enumerate()
        .filter(|&(i, c)| i != t && c.rt)
        .map(|(_, c)| c.budget)
        .fold(0u64, |a, b| a.saturating_add(b));
    let c_rt = timing
        .burst
        .saturating_add(timing.t_ccd)
        .saturating_add(timing.t_rrd)
        .saturating_add(3);
    let refresh_stall = timing.t_rfc.saturating_add(timing.t_rp);

    // Least fixed point of
    //   W = own + (W/period + 1) * R_other * c_rt
    //         + (W/tREFI + 1) * (tRFC + tRP) + period + extra.
    let base = own_service
        .saturating_add(reg.period)
        .saturating_add(extra_blocking);
    let mut w = base;
    for _ in 0..MAX_ITERATIONS {
        let rt_interference = (w / reg.period)
            .saturating_add(1)
            .saturating_mul(rt_budget_other)
            .saturating_mul(c_rt);
        let refresh = (w / timing.t_refi)
            .saturating_add(1)
            .saturating_mul(refresh_stall);
        let next = base.saturating_add(rt_interference).saturating_add(refresh);
        if next > BOUND_CAP {
            return None;
        }
        if next == w {
            return Some(WcetBreakdown {
                own_service,
                rt_interference,
                refresh,
                regulator_delay: reg.period,
                extra_blocking,
            });
        }
        w = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(budget: u64, others: usize) -> RegulationConfig {
        let mut r = RegulationConfig::new(10_000).rt_class(budget, None);
        for _ in 0..others {
            r = r.best_effort();
        }
        r
    }

    #[test]
    fn bound_exists_for_budgeted_rt_thread() {
        let b = bound_for(
            &TimingParams::ddr2_800(),
            &Geometry::paper(),
            &reg(8, 2),
            0,
            0,
        )
        .unwrap();
        // Must at least cover the backlog's raw service plus a refresh
        // stall plus the regulator period.
        let t = TimingParams::ddr2_800();
        assert!(b >= 8 * (t.service_conflict() + t.burst) + t.t_rfc + 10_000);
        assert!(b < 1 << 20, "bound should be finite and sane, got {b}");
    }

    #[test]
    fn best_effort_and_zero_budget_carry_no_bound() {
        let t = TimingParams::ddr2_800();
        let g = Geometry::paper();
        assert_eq!(bound_for(&t, &g, &reg(8, 2), 1, 0), None);
        assert_eq!(bound_for(&t, &g, &reg(0, 2), 0, 0), None);
        assert_eq!(bound_for(&t, &g, &reg(8, 2), 9, 0), None);
    }

    #[test]
    fn unpartitioned_or_overlapping_modes_carry_no_bound() {
        let t = TimingParams::ddr2_800();
        let g = Geometry::paper();
        let mut unpart = reg(8, 2);
        unpart.partition = false;
        assert_eq!(bound_for(&t, &g, &unpart, 0, 0), None);
        // 9 classes over 8 banks: slices overlap, intra-bank term unsound.
        assert_eq!(bound_for(&t, &g, &reg(8, 8), 0, 0), None);
    }

    #[test]
    fn bound_is_monotone_in_budget_interference_and_faults() {
        let t = TimingParams::ddr2_800();
        let g = Geometry::paper();
        let base = bound_for(&t, &g, &reg(4, 2), 0, 0).unwrap();
        let bigger_budget = bound_for(&t, &g, &reg(8, 2), 0, 0).unwrap();
        assert!(bigger_budget > base);
        let with_rt_rival = bound_for(
            &t,
            &g,
            &RegulationConfig::new(10_000)
                .rt_class(4, None)
                .rt_class(4, None)
                .best_effort(),
            0,
            0,
        )
        .unwrap();
        assert!(with_rt_rival > base);
        let with_faults = bound_for(&t, &g, &reg(4, 2), 0, 5_000).unwrap();
        assert_eq!(with_faults, base + 5_000);
    }

    #[test]
    fn breakdown_terms_sum_to_the_bound() {
        let t = TimingParams::ddr2_800();
        let g = Geometry::paper();
        let r = RegulationConfig::new(10_000)
            .rt_class(6, None)
            .rt_class(3, None)
            .best_effort();
        let b = breakdown_for(&t, &g, &r, 0, 123).unwrap();
        assert_eq!(Some(b.total()), bound_for(&t, &g, &r, 0, 123));
        assert_eq!(b.regulator_delay, 10_000);
        assert_eq!(b.extra_blocking, 123);
        assert!(b.rt_interference > 0, "thread 1's budget must show up");
        assert!(b.refresh >= t.t_rfc + t.t_rp);
    }

    #[test]
    fn saturating_inputs_never_panic() {
        let mut t = TimingParams::ddr2_800();
        t.t_rfc = u64::MAX / 2;
        t.t_refi = u64::MAX;
        let g = Geometry::paper();
        // Diverges (or saturates) — must return None, not overflow.
        let r = RegulationConfig::new(1).rt_class(u64::MAX, None);
        assert_eq!(bound_for(&t, &g, &r, 0, u64::MAX), None);
    }
}
