//! Memory controller substrate and schedulers for the Fair Queuing Memory
//! Systems reproduction.
//!
//! This crate provides the paper's Figure 2 memory controller — per-thread
//! transaction/write buffers with NACK back-pressure, an XOR physical
//! address mapping, per-bank schedulers and a channel scheduler — together
//! with the scheduling policies evaluated (or used as ablations):
//! **FR-FCFS** (baseline), **FR-VFTF**, **FQ-VFTF** (the Fair Queuing
//! memory scheduler with its bounded-priority-inversion bank scheduling
//! algorithm), a strict **FCFS** ablation, plus two slowdown-aware
//! policies (ISSUE 7): **BLISS** blacklisting ([`bliss`]) and
//! **SD-VFTF**, which scales VFT keys by the online slowdown estimate
//! ([`slowdown`]).
//!
//! The Fair Queuing machinery — per-thread Virtual Time Memory System
//! registers and the virtual-finish-time equations — lives in [`vtms`].
//!
//! Multi-channel systems compose per-channel controllers either through
//! the coupled [`multichannel::MultiChannelController`] or through the
//! sharded, thread-parallel [`engine`] (bit-identical results, one shard
//! per channel).
//!
//! # Example
//!
//! ```
//! use fqms_memctrl::prelude::*;
//! use fqms_dram::prelude::*;
//! use fqms_sim::clock::DramCycle;
//!
//! let cfg = McConfig::paper(4, SchedulerKind::FqVftf);
//! let mut mc = MemoryController::new(
//!     cfg, Geometry::paper(), TimingParams::ddr2_800(),
//! ).unwrap();
//! mc.try_submit(ThreadId::new(2), RequestKind::Read, 0x10000, DramCycle::new(0))
//!     .unwrap();
//! let mut completed = 0;
//! for c in 1..200u64 {
//!     completed += mc.step(DramCycle::new(c)).len();
//! }
//! assert_eq!(completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address_map;
pub mod bliss;
pub mod buffers;
pub mod cmdlog;
pub mod config;
pub mod controller;
pub mod engine;
pub mod multichannel;
pub mod overload;
pub mod policy;
pub mod port;
pub mod regulate;
pub mod request;
pub mod select;
pub mod slowdown;
pub mod stats;
pub mod vtms;
pub mod wcet;

/// Convenient re-exports of the crate's primary types.
pub mod prelude {
    pub use crate::address_map::AddressMap;
    pub use crate::bliss::BlissState;
    pub use crate::buffers::{Nack, ShedClass, ThreadBuffers};
    pub use crate::cmdlog::{CommandLog, CommandRecord};
    pub use crate::config::{
        ClassSpec, McConfig, OverloadConfig, RegulationConfig, ShareTree, ShedConfig, TenantSpec,
        ThrottleConfig, UnsupportedScanError,
    };
    pub use crate::controller::{Completion, MemoryController};
    pub use crate::engine::{
        adversarial_workload, interference_workload, realtime_workload, resume_parallel,
        resume_serial, simulate_parallel, simulate_parallel_checkpointed,
        simulate_parallel_lockstep, simulate_serial, simulate_serial_checkpointed,
        synthetic_workload, EngineReport, EngineSpec, RetryPolicy, SubmitEvent,
    };
    pub use crate::multichannel::MultiChannelController;
    pub use crate::overload::{OverloadState, SaturationLevel};
    pub use crate::policy::{
        InversionBound, Priority, RowPolicy, ScanKind, SchedulerKind, VftBinding,
    };
    pub use crate::port::MemoryPort;
    pub use crate::regulate::RegulatorState;
    pub use crate::request::{MemoryRequest, RequestId, RequestKind, ThreadId};
    pub use crate::select::{IndexedHeap, SelKey, TournamentTree};
    pub use crate::slowdown::SlowdownEstimator;
    pub use crate::stats::{McStats, ThreadStats};
    pub use crate::vtms::{bank_service, update_service, Vtms};
    pub use crate::wcet::{bound_for, breakdown_for, WcetBreakdown};
    pub use fqms_obs::{
        Event, EventRing, MetricsSink, NullObserver, Observations, Observer, ThreadSink,
        TracingObserver,
    };
}

pub use prelude::*;
