//! Structured scheduler events and the bounded ring that retains them.
//!
//! Events are deliberately *flat* — raw thread indices, request ids, and
//! global (within-channel) bank indices rather than the controller's
//! newtypes — so this crate sits below `fqms-memctrl` in the dependency
//! graph and the controller can emit events without a cycle. One event
//! stream describes one channel; multi-channel compositions keep one ring
//! per channel and never interleave them (see the determinism rules in
//! DESIGN.md).

use fqms_dram::command::CommandKind;
use fqms_sim::fault::FaultKind;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};
use std::collections::VecDeque;

/// One observable scheduler occurrence, stamped with its DRAM cycle.
///
/// Within a cycle, events are emitted in simulation order: completions
/// drained first, then fault and watchdog events ([`Event::FaultInjected`]
/// / [`Event::RequestDropped`] / [`Event::StarvationDetected`]) and
/// overload-control transitions ([`Event::SaturationEntered`] /
/// [`Event::SaturationExited`]), then admission events ([`Event::Arrival`]
/// / [`Event::Nack`] / [`Event::Throttled`] / [`Event::Shed`] /
/// [`Event::Rejected`]), then scheduling events ([`Event::VftBound`] /
/// [`Event::InversionLock`]), then the issued command, then write
/// completions (writes complete at CAS issue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A request was admitted into its bank queue.
    Arrival {
        /// Admission cycle.
        cycle: u64,
        /// Originating thread index.
        thread: u32,
        /// System-wide request id.
        id: u64,
        /// True for writebacks, false for demand reads.
        is_write: bool,
        /// Global bank index within the channel (`rank * banks + bank`).
        bank: u32,
        /// Depth of the target bank queue *after* admission — the
        /// queue-depth gauge is sampled at arrival, not per cycle.
        queue_depth: u32,
    },
    /// A request was rejected with back-pressure (buffer full). The
    /// requester retries, so one logical request may produce many NACKs.
    Nack {
        /// Rejection cycle.
        cycle: u64,
        /// Rejected thread index.
        thread: u32,
        /// True if the write buffer (rather than the transaction buffer)
        /// was the bottleneck.
        is_write: bool,
    },
    /// A virtual finish time was bound to a request (lazily at
    /// first-ready, or eagerly at arrival under the at-arrival ablation).
    VftBound {
        /// Binding cycle.
        cycle: u64,
        /// Owning thread index.
        thread: u32,
        /// Request id.
        id: u64,
        /// The bound virtual finish time (Equation 7).
        vft: f64,
    },
    /// The FQ bank scheduler's priority-inversion bound tripped: the bank
    /// has been continuously active for `x` cycles, so first-ready
    /// chaining ends and the scheduler locks onto the
    /// earliest-virtual-finish-time request (paper Section 3.3). Emitted
    /// once per activation, on the first cycle the locked ranking runs.
    InversionLock {
        /// Cycle the lock engaged.
        cycle: u64,
        /// Global bank index within the channel.
        bank: u32,
        /// Cycles the bank had been active (>= the bound `x`).
        active_for: u64,
    },
    /// An SDRAM command issued on the channel.
    CommandIssued {
        /// Issue cycle.
        cycle: u64,
        /// Command class (activate / precharge / read / write / refresh).
        kind: CommandKind,
        /// Global bank index within the channel; `None` for rank-wide
        /// refresh.
        bank: Option<u32>,
        /// Owning thread; `None` for unowned commands (closed-row idle
        /// precharges, refresh machinery).
        thread: Option<u32>,
        /// Owning request id, when the command serves a queued request.
        id: Option<u64>,
    },
    /// A request finished from the requester's perspective (reads: last
    /// data beat arrived; writes: the line left the controller at CAS
    /// issue).
    Completed {
        /// Completion cycle.
        cycle: u64,
        /// Owning thread index.
        thread: u32,
        /// Request id.
        id: u64,
        /// True for writebacks.
        is_write: bool,
        /// Controller-resident latency in DRAM cycles.
        latency: u64,
        /// Payload size in bytes (one cache line).
        bytes: u64,
        /// Estimated cycles the request would have taken on an unloaded
        /// memory system (the intrinsic closed-bank service model used for
        /// online slowdown estimation, ISSUE 7).
        alone_cycles: u64,
    },
    /// A fault episode activated (deterministic injection from a
    /// `fqms_sim::fault::FaultPlan`). Emitted once per episode, on its
    /// first active cycle.
    FaultInjected {
        /// Activation cycle.
        cycle: u64,
        /// The fault class that became active.
        kind: FaultKind,
        /// One past the episode's last active cycle (equal to `cycle + 1`
        /// for point events such as request drops).
        until: u64,
        /// Victim global bank index, for bank-scoped faults.
        bank: Option<u32>,
    },
    /// A queued request was deterministically dropped by fault injection
    /// and will never complete.
    RequestDropped {
        /// Drop cycle.
        cycle: u64,
        /// Owning thread index.
        thread: u32,
        /// Request id.
        id: u64,
        /// True for writebacks.
        is_write: bool,
    },
    /// The per-thread starvation watchdog fired: the thread has pending
    /// work but made no progress (no admission, no completion) for at
    /// least the configured threshold. Emitted once per stall episode —
    /// the watchdog re-arms when the thread next makes progress.
    StarvationDetected {
        /// Detection cycle.
        cycle: u64,
        /// Starved thread index.
        thread: u32,
        /// Cycles since the thread last made progress.
        stalled_for: u64,
    },
    /// A regulated real-time request completed with a latency above its
    /// class's configured WCET bound (ISSUE 9). Under a sound bound and a
    /// conforming workload this never fires — the release gates assert a
    /// zero count.
    BoundExceeded {
        /// Completion cycle of the offending request.
        cycle: u64,
        /// Owning thread index.
        thread: u32,
        /// Request id.
        id: u64,
        /// True for writebacks.
        is_write: bool,
        /// Observed controller-resident latency in DRAM cycles.
        latency: u64,
        /// The configured analytic bound it exceeded.
        bound: u64,
    },
    /// A submission was refused by the admission throttle (ISSUE 10): the
    /// thread is classified a bandwidth hog and its tokens for the current
    /// period are exhausted. The requester backs off and retries.
    Throttled {
        /// Refusal cycle.
        cycle: u64,
        /// Throttled thread index.
        thread: u32,
        /// Cycles until the thread's token bucket replenishes.
        retry_after: u64,
    },
    /// A submission was dropped by the tiered load shedder (ISSUE 10).
    /// Terminal: the request is never admitted and never retried.
    Shed {
        /// Shed cycle.
        cycle: u64,
        /// Owning thread index.
        thread: u32,
        /// True for writebacks.
        is_write: bool,
        /// Shed class wire encoding (0 = best-effort write, 1 = any
        /// best-effort request; mirrors `fqms_memctrl::buffers::ShedClass`).
        class: u8,
    },
    /// A submission port abandoned a request after exhausting its retry
    /// budget (ISSUE 10): the request counts as `rejected` in the
    /// conservation law and will never complete.
    Rejected {
        /// Abandonment cycle.
        cycle: u64,
        /// Owning thread index.
        thread: u32,
        /// True for writebacks.
        is_write: bool,
    },
    /// The overload saturation detector escalated (ISSUE 10). Emitted
    /// once per level change at a detector window boundary.
    SaturationEntered {
        /// Boundary cycle of the transition.
        cycle: u64,
        /// The level entered (1 = Degraded, 2 = Shedding).
        level: u8,
    },
    /// The overload saturation detector de-escalated (ISSUE 10).
    SaturationExited {
        /// Boundary cycle of the transition.
        cycle: u64,
        /// The level settled to (0 = Normal, 1 = Degraded).
        level: u8,
    },
}

impl Event {
    /// The cycle the event was emitted at.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::Arrival { cycle, .. }
            | Event::Nack { cycle, .. }
            | Event::VftBound { cycle, .. }
            | Event::InversionLock { cycle, .. }
            | Event::CommandIssued { cycle, .. }
            | Event::Completed { cycle, .. }
            | Event::FaultInjected { cycle, .. }
            | Event::RequestDropped { cycle, .. }
            | Event::StarvationDetected { cycle, .. }
            | Event::BoundExceeded { cycle, .. }
            | Event::Throttled { cycle, .. }
            | Event::Shed { cycle, .. }
            | Event::Rejected { cycle, .. }
            | Event::SaturationEntered { cycle, .. }
            | Event::SaturationExited { cycle, .. } => cycle,
        }
    }
}

/// A bounded ring of [`Event`]s: the most recent `capacity` events are
/// retained, and the total ever recorded is counted so overflow is
/// detectable (`total_recorded() > len()`).
///
/// # Example
///
/// ```
/// use fqms_obs::event::{Event, EventRing};
///
/// let mut ring = EventRing::new(2);
/// for c in 0..3 {
///     ring.record(&Event::Nack { cycle: c, thread: 0, is_write: false });
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.total_recorded(), 3);
/// assert_eq!(ring.iter().next().unwrap().cycle(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventRing {
    ring: VecDeque<Event>,
    capacity: usize,
    total: u64,
}

impl EventRing {
    /// Creates a ring retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing {
            ring: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            total: 0,
        }
    }

    /// Appends an event, evicting the oldest if full.
    #[inline]
    pub fn record(&mut self, event: &Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(*event);
        self.total += 1;
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// True if events have been evicted (the stream is partial).
    pub fn overflowed(&self) -> bool {
        self.total > self.ring.len() as u64
    }

    /// Iterates oldest-to-newest over the retained events.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Drops all retained events and resets the total counter.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.total = 0;
    }
}

fn put_command_kind(w: &mut SectionWriter, kind: CommandKind) {
    w.put_u8(match kind {
        CommandKind::Activate => 0,
        CommandKind::Precharge => 1,
        CommandKind::Read => 2,
        CommandKind::Write => 3,
        CommandKind::Refresh => 4,
    });
}

fn get_command_kind(r: &mut SectionReader<'_>) -> Result<CommandKind, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(CommandKind::Activate),
        1 => Ok(CommandKind::Precharge),
        2 => Ok(CommandKind::Read),
        3 => Ok(CommandKind::Write),
        4 => Ok(CommandKind::Refresh),
        tag => Err(r.malformed(format!("unknown command kind tag {tag}"))),
    }
}

fn put_fault_kind(w: &mut SectionWriter, kind: FaultKind) {
    w.put_u8(match kind {
        FaultKind::NackStorm => 0,
        FaultKind::BankStall => 1,
        FaultKind::RefreshPressure => 2,
        FaultKind::RequestDrop => 3,
    });
}

fn get_fault_kind(r: &mut SectionReader<'_>) -> Result<FaultKind, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(FaultKind::NackStorm),
        1 => Ok(FaultKind::BankStall),
        2 => Ok(FaultKind::RefreshPressure),
        3 => Ok(FaultKind::RequestDrop),
        tag => Err(r.malformed(format!("unknown fault kind tag {tag}"))),
    }
}

fn put_opt_u32(w: &mut SectionWriter, v: Option<u32>) {
    w.put_opt_u64(v.map(u64::from));
}

fn get_opt_u32(r: &mut SectionReader<'_>) -> Result<Option<u32>, SnapshotError> {
    match r.get_opt_u64()? {
        None => Ok(None),
        Some(v) => u32::try_from(v)
            .map(Some)
            .map_err(|_| r.malformed(format!("u32 field out of range: {v}"))),
    }
}

fn put_event(w: &mut SectionWriter, e: &Event) {
    match *e {
        Event::Arrival {
            cycle,
            thread,
            id,
            is_write,
            bank,
            queue_depth,
        } => {
            w.put_u8(0);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_u64(id);
            w.put_bool(is_write);
            w.put_u32(bank);
            w.put_u32(queue_depth);
        }
        Event::Nack {
            cycle,
            thread,
            is_write,
        } => {
            w.put_u8(1);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_bool(is_write);
        }
        Event::VftBound {
            cycle,
            thread,
            id,
            vft,
        } => {
            w.put_u8(2);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_u64(id);
            w.put_f64(vft);
        }
        Event::InversionLock {
            cycle,
            bank,
            active_for,
        } => {
            w.put_u8(3);
            w.put_u64(cycle);
            w.put_u32(bank);
            w.put_u64(active_for);
        }
        Event::CommandIssued {
            cycle,
            kind,
            bank,
            thread,
            id,
        } => {
            w.put_u8(4);
            w.put_u64(cycle);
            put_command_kind(w, kind);
            put_opt_u32(w, bank);
            put_opt_u32(w, thread);
            w.put_opt_u64(id);
        }
        Event::Completed {
            cycle,
            thread,
            id,
            is_write,
            latency,
            bytes,
            alone_cycles,
        } => {
            w.put_u8(5);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_u64(id);
            w.put_bool(is_write);
            w.put_u64(latency);
            w.put_u64(bytes);
            w.put_u64(alone_cycles);
        }
        Event::FaultInjected {
            cycle,
            kind,
            until,
            bank,
        } => {
            w.put_u8(6);
            w.put_u64(cycle);
            put_fault_kind(w, kind);
            w.put_u64(until);
            put_opt_u32(w, bank);
        }
        Event::RequestDropped {
            cycle,
            thread,
            id,
            is_write,
        } => {
            w.put_u8(7);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_u64(id);
            w.put_bool(is_write);
        }
        Event::StarvationDetected {
            cycle,
            thread,
            stalled_for,
        } => {
            w.put_u8(8);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_u64(stalled_for);
        }
        Event::BoundExceeded {
            cycle,
            thread,
            id,
            is_write,
            latency,
            bound,
        } => {
            w.put_u8(9);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_u64(id);
            w.put_bool(is_write);
            w.put_u64(latency);
            w.put_u64(bound);
        }
        Event::Throttled {
            cycle,
            thread,
            retry_after,
        } => {
            w.put_u8(10);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_u64(retry_after);
        }
        Event::Shed {
            cycle,
            thread,
            is_write,
            class,
        } => {
            w.put_u8(11);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_bool(is_write);
            w.put_u8(class);
        }
        Event::Rejected {
            cycle,
            thread,
            is_write,
        } => {
            w.put_u8(12);
            w.put_u64(cycle);
            w.put_u32(thread);
            w.put_bool(is_write);
        }
        Event::SaturationEntered { cycle, level } => {
            w.put_u8(13);
            w.put_u64(cycle);
            w.put_u8(level);
        }
        Event::SaturationExited { cycle, level } => {
            w.put_u8(14);
            w.put_u64(cycle);
            w.put_u8(level);
        }
    }
}

fn get_event(r: &mut SectionReader<'_>) -> Result<Event, SnapshotError> {
    let tag = r.get_u8()?;
    Ok(match tag {
        0 => Event::Arrival {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            id: r.get_u64()?,
            is_write: r.get_bool()?,
            bank: r.get_u32()?,
            queue_depth: r.get_u32()?,
        },
        1 => Event::Nack {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            is_write: r.get_bool()?,
        },
        2 => Event::VftBound {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            id: r.get_u64()?,
            vft: r.get_f64()?,
        },
        3 => Event::InversionLock {
            cycle: r.get_u64()?,
            bank: r.get_u32()?,
            active_for: r.get_u64()?,
        },
        4 => Event::CommandIssued {
            cycle: r.get_u64()?,
            kind: get_command_kind(r)?,
            bank: get_opt_u32(r)?,
            thread: get_opt_u32(r)?,
            id: r.get_opt_u64()?,
        },
        5 => Event::Completed {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            id: r.get_u64()?,
            is_write: r.get_bool()?,
            latency: r.get_u64()?,
            bytes: r.get_u64()?,
            alone_cycles: r.get_u64()?,
        },
        6 => Event::FaultInjected {
            cycle: r.get_u64()?,
            kind: get_fault_kind(r)?,
            until: r.get_u64()?,
            bank: get_opt_u32(r)?,
        },
        7 => Event::RequestDropped {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            id: r.get_u64()?,
            is_write: r.get_bool()?,
        },
        8 => Event::StarvationDetected {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            stalled_for: r.get_u64()?,
        },
        9 => Event::BoundExceeded {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            id: r.get_u64()?,
            is_write: r.get_bool()?,
            latency: r.get_u64()?,
            bound: r.get_u64()?,
        },
        10 => Event::Throttled {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            retry_after: r.get_u64()?,
        },
        11 => Event::Shed {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            is_write: r.get_bool()?,
            class: r.get_u8()?,
        },
        12 => Event::Rejected {
            cycle: r.get_u64()?,
            thread: r.get_u32()?,
            is_write: r.get_bool()?,
        },
        13 => Event::SaturationEntered {
            cycle: r.get_u64()?,
            level: r.get_u8()?,
        },
        14 => Event::SaturationExited {
            cycle: r.get_u64()?,
            level: r.get_u8()?,
        },
        tag => return Err(r.malformed(format!("unknown event tag {tag}"))),
    })
}

/// The ring capacity is construction-time configuration and must match the
/// restore target; the retained events and the lifetime total are state and
/// round-trip exactly, so `total_recorded()` and `overflowed()` agree with
/// an uninterrupted run after resume.
impl Snapshot for EventRing {
    fn save(&self, w: &mut SectionWriter) {
        w.put_usize(self.capacity);
        w.put_u64(self.total);
        w.put_seq_len(self.ring.len());
        for e in &self.ring {
            put_event(w, e);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let capacity = r.get_usize()?;
        if capacity != self.capacity {
            return Err(r.malformed(format!(
                "event ring capacity {capacity} != {}",
                self.capacity
            )));
        }
        let total = r.get_u64()?;
        let n = r.seq_len()?;
        if n > capacity {
            return Err(r.malformed(format!("{n} retained events exceed capacity {capacity}")));
        }
        if (n as u64) > total {
            return Err(r.malformed(format!("{n} retained events exceed lifetime total {total}")));
        }
        let mut ring = VecDeque::with_capacity(n);
        for _ in 0..n {
            ring.push_back(get_event(r)?);
        }
        self.ring = ring;
        self.total = total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nack(cycle: u64) -> Event {
        Event::Nack {
            cycle,
            thread: 1,
            is_write: true,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = EventRing::new(3);
        for c in 0..10 {
            r.record(&nack(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 10);
        assert!(r.overflowed());
        let cycles: Vec<u64> = r.iter().map(Event::cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn ring_without_eviction_is_complete() {
        let mut r = EventRing::new(16);
        for c in 0..5 {
            r.record(&nack(c));
        }
        assert!(!r.overflowed());
        assert_eq!(r.total_recorded(), r.len() as u64);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = EventRing::new(2);
        r.record(&nack(0));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = EventRing::new(0);
    }

    #[test]
    fn event_cycle_accessor_covers_all_variants() {
        let events = [
            Event::Arrival {
                cycle: 1,
                thread: 0,
                id: 0,
                is_write: false,
                bank: 0,
                queue_depth: 1,
            },
            Event::Nack {
                cycle: 2,
                thread: 0,
                is_write: false,
            },
            Event::VftBound {
                cycle: 3,
                thread: 0,
                id: 0,
                vft: 1.5,
            },
            Event::InversionLock {
                cycle: 4,
                bank: 0,
                active_for: 18,
            },
            Event::CommandIssued {
                cycle: 5,
                kind: CommandKind::Read,
                bank: Some(0),
                thread: Some(0),
                id: Some(0),
            },
            Event::Completed {
                cycle: 6,
                thread: 0,
                id: 0,
                is_write: false,
                latency: 15,
                bytes: 64,
                alone_cycles: 14,
            },
            Event::FaultInjected {
                cycle: 7,
                kind: FaultKind::NackStorm,
                until: 12,
                bank: None,
            },
            Event::RequestDropped {
                cycle: 8,
                thread: 0,
                id: 0,
                is_write: false,
            },
            Event::StarvationDetected {
                cycle: 9,
                thread: 0,
                stalled_for: 4_000,
            },
            Event::BoundExceeded {
                cycle: 10,
                thread: 0,
                id: 0,
                is_write: false,
                latency: 9_000,
                bound: 8_000,
            },
            Event::Throttled {
                cycle: 11,
                thread: 0,
                retry_after: 500,
            },
            Event::Shed {
                cycle: 12,
                thread: 0,
                is_write: true,
                class: 0,
            },
            Event::Rejected {
                cycle: 13,
                thread: 0,
                is_write: false,
            },
            Event::SaturationEntered {
                cycle: 14,
                level: 1,
            },
            Event::SaturationExited {
                cycle: 15,
                level: 0,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.cycle(), i as u64 + 1);
        }
    }
}
