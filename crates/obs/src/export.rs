//! Machine-readable exporters for metric sinks.
//!
//! Hand-rolled TSV and JSON emitters (the workspace is hermetic — no
//! serde). Both formats carry the same data: one record per thread plus a
//! channel-level record. Histograms are flattened to `bucket:count` pairs
//! for non-empty buckets, where `bucket` is the exclusive upper edge of
//! the log2 bucket (so `16:3` means three samples in `[8, 16)`).

use crate::metrics::{MetricsSink, ThreadSink};
use fqms_sim::stats::Log2Histogram;
use std::fmt::Write as _;

/// Column header for [`metrics_tsv`] rows.
pub const TSV_HEADER: &str = "#label\tscheduler\tthread\treads\twrites\tnacks\tbytes\tread_lat_mean\tread_lat_p50\tread_lat_p95\tread_lat_max\twrite_lat_mean\tqdepth_mean\tqdepth_max\tvft_drift_mean\tvft_drift_max\tdrops\tstarved\trejected\tshed\tthrottled\talone_est\tshared\tslowdown\tread_lat_hist";

fn histogram_cell(h: &Log2Histogram) -> String {
    if h.count() == 0 {
        return "-".to_string();
    }
    let mut cell = String::new();
    for (i, &count) in h.buckets().iter().enumerate() {
        if count == 0 {
            continue;
        }
        if !cell.is_empty() {
            cell.push(',');
        }
        // Bucket i holds samples in [2^(i-1), 2^i); report the exclusive
        // upper edge, matching `Log2Histogram::percentile`.
        let edge = if i == 0 { 0 } else { 1u64 << i.min(63) };
        let _ = write!(cell, "{edge}:{count}");
    }
    cell
}

fn thread_row(label: &str, scheduler: &str, thread: &str, t: &ThreadSink) -> String {
    format!(
        "{label}\t{scheduler}\t{thread}\t{reads}\t{writes}\t{nacks}\t{bytes}\t{rl_mean:.3}\t{rl_p50}\t{rl_p95}\t{rl_max}\t{wl_mean:.3}\t{qd_mean:.3}\t{qd_max}\t{drift_mean:.3}\t{drift_max:.3}\t{drops}\t{starved}\t{rejected}\t{shed}\t{throttled}\t{alone_est}\t{shared}\t{slowdown:.3}\t{hist}",
        reads = t.reads_completed,
        writes = t.writes_completed,
        nacks = t.nacks,
        bytes = t.bytes,
        rl_mean = t.read_latency.mean(),
        rl_p50 = t.read_latency.percentile(0.50),
        rl_p95 = t.read_latency.percentile(0.95),
        rl_max = t.read_latency.max(),
        wl_mean = t.write_latency.mean(),
        qd_mean = t.mean_queue_depth(),
        qd_max = t.queue_depth_max,
        drift_mean = if t.vft_drift.count() == 0 { 0.0 } else { t.vft_drift.mean() },
        drift_max = if t.vft_drift.count() == 0 { 0.0 } else { t.vft_drift.max() },
        drops = t.requests_dropped,
        starved = t.starvations,
        rejected = t.rejected,
        shed = t.shed,
        throttled = t.throttled,
        alone_est = t.alone_cycles_est,
        shared = t.shared_cycles,
        slowdown = t.slowdown(),
        hist = histogram_cell(&t.read_latency),
    )
}

/// Renders a sink as TSV rows (no header; prepend [`TSV_HEADER`] once per
/// file). `label` identifies the run (workload mix), `scheduler` the
/// memory-scheduler under test. Emits one row per thread and a trailing
/// `all`-thread channel row carrying command/lock counters in the
/// reads/writes columns' place via dedicated totals.
pub fn metrics_tsv(label: &str, scheduler: &str, sink: &MetricsSink) -> String {
    let mut out = String::new();
    let mut totals = ThreadSink::default();
    for (thread, t) in sink.iter() {
        let _ = writeln!(
            out,
            "{}",
            thread_row(label, scheduler, &thread.to_string(), t)
        );
        totals.merge(t);
    }
    // Channel-level summary row: thread column says "all"; histograms and
    // gauges are the cross-thread merge.
    let _ = writeln!(
        out,
        "{row}\t# commands={cmds} inversion_locks={locks} faults={faults} sat_in={sat_in} sat_out={sat_out} max_slowdown={maxsd:.3} hspeedup={hsp:.3}",
        row = thread_row(label, scheduler, "all", &totals),
        cmds = sink.commands_issued,
        locks = sink.inversion_locks,
        faults = sink.faults_injected,
        sat_in = sink.saturation_entries,
        sat_out = sink.saturation_exits,
        maxsd = sink.max_slowdown(),
        hsp = sink.harmonic_speedup(),
    );
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &Log2Histogram) -> String {
    let mut pairs = String::new();
    for (i, &count) in h.buckets().iter().enumerate() {
        if count == 0 {
            continue;
        }
        if !pairs.is_empty() {
            pairs.push(',');
        }
        let edge = if i == 0 { 0 } else { 1u64 << i.min(63) };
        let _ = write!(pairs, "[{edge},{count}]");
    }
    format!("[{pairs}]")
}

fn thread_json(thread: u32, t: &ThreadSink) -> String {
    format!(
        concat!(
            "{{\"thread\":{},\"reads\":{},\"writes\":{},\"nacks\":{},\"bytes\":{},",
            "\"read_latency\":{{\"mean\":{:.6},\"p50\":{},\"p95\":{},\"max\":{},\"log2_buckets\":{}}},",
            "\"write_latency\":{{\"mean\":{:.6},\"log2_buckets\":{}}},",
            "\"queue_depth\":{{\"mean\":{:.6},\"max\":{}}},",
            "\"vft_drift\":{{\"count\":{},\"mean\":{:.6},\"max\":{:.6}}},",
            "\"drops\":{},\"starved\":{},",
            "\"rejected\":{},\"shed\":{},\"throttled\":{},",
            "\"alone_cycles_est\":{},\"shared_cycles\":{},\"slowdown\":{:.6}}}"
        ),
        thread,
        t.reads_completed,
        t.writes_completed,
        t.nacks,
        t.bytes,
        t.read_latency.mean(),
        t.read_latency.percentile(0.50),
        t.read_latency.percentile(0.95),
        t.read_latency.max(),
        histogram_json(&t.read_latency),
        t.write_latency.mean(),
        histogram_json(&t.write_latency),
        t.mean_queue_depth(),
        t.queue_depth_max,
        t.vft_drift.count(),
        if t.vft_drift.count() == 0 { 0.0 } else { t.vft_drift.mean() },
        if t.vft_drift.count() == 0 { 0.0 } else { t.vft_drift.max() },
        t.requests_dropped,
        t.starvations,
        t.rejected,
        t.shed,
        t.throttled,
        t.alone_cycles_est,
        t.shared_cycles,
        t.slowdown(),
    )
}

/// Renders a sink as a single self-contained JSON object.
pub fn metrics_json(label: &str, scheduler: &str, sink: &MetricsSink) -> String {
    let threads: Vec<String> = sink.iter().map(|(i, t)| thread_json(i, t)).collect();
    format!(
        concat!(
            "{{\"label\":\"{}\",\"scheduler\":\"{}\",\"commands_issued\":{},",
            "\"inversion_locks\":{},\"faults_injected\":{},",
            "\"saturation_entries\":{},\"saturation_exits\":{},",
            "\"max_slowdown\":{:.6},\"harmonic_speedup\":{:.6},\"threads\":[{}]}}"
        ),
        json_escape(label),
        json_escape(scheduler),
        sink.commands_issued,
        sink.inversion_locks,
        sink.faults_injected,
        sink.saturation_entries,
        sink.saturation_exits,
        sink.max_slowdown(),
        sink.harmonic_speedup(),
        threads.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn sample_sink() -> MetricsSink {
        let mut sink = MetricsSink::new(2);
        for (thread, latency) in [(0u32, 10u64), (0, 12), (1, 300)] {
            sink.observe(&Event::Completed {
                cycle: 1000,
                thread,
                id: 0,
                is_write: false,
                latency,
                bytes: 64,
                alone_cycles: 14,
            });
        }
        sink.observe(&Event::Nack {
            cycle: 5,
            thread: 1,
            is_write: true,
        });
        sink.observe(&Event::VftBound {
            cycle: 10,
            thread: 0,
            id: 3,
            vft: 42.0,
        });
        sink
    }

    #[test]
    fn tsv_has_one_row_per_thread_plus_summary() {
        let tsv = metrics_tsv("mix", "fq-vftf", &sample_sink());
        let rows: Vec<&str> = tsv.lines().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].starts_with("mix\tfq-vftf\t0\t2\t0\t0\t128\t"));
        assert!(rows[1].starts_with("mix\tfq-vftf\t1\t1\t0\t1\t64\t"));
        assert!(rows[2].contains("\tall\t3\t0\t1\t192\t"));
        assert!(rows[2].contains("# commands=0 inversion_locks=0 faults=0"));
        // Header column count matches row column count (summary row adds a
        // trailing comment column).
        let header_cols = TSV_HEADER.split('\t').count();
        assert_eq!(rows[0].split('\t').count(), header_cols);
        assert_eq!(rows[2].split('\t').count(), header_cols + 1);
    }

    #[test]
    fn tsv_histogram_cell_reports_bucket_edges() {
        let tsv = metrics_tsv("m", "s", &sample_sink());
        // Latencies 10 and 12 land in bucket (8,16]; 300 in (256,512].
        assert!(tsv.lines().next().unwrap().ends_with("16:2"));
        assert!(tsv.lines().nth(1).unwrap().ends_with("512:1"));
    }

    #[test]
    fn percentile_columns_are_on_the_unit_scale() {
        // Skewed distribution: p50 and p95 must land in distinct interior
        // buckets strictly below the max bucket edge. A 0-100-scale call
        // would clamp both to p100 (8192 here).
        let mut sink = MetricsSink::new(1);
        let mut id = 0u64;
        for (n, latency) in [(60u64, 10u64), (35, 300), (5, 5000)] {
            for _ in 0..n {
                sink.observe(&Event::Completed {
                    cycle: 9000,
                    thread: 0,
                    id,
                    is_write: false,
                    latency,
                    bytes: 64,
                    alone_cycles: 14,
                });
                id += 1;
            }
        }
        let tsv = metrics_tsv("m", "s", &sink);
        let cols: Vec<&str> = tsv.lines().next().unwrap().split('\t').collect();
        let p50: u64 = cols[8].parse().unwrap();
        let p95: u64 = cols[9].parse().unwrap();
        assert_eq!(p50, 16, "p50 of 60/100 samples at latency 10");
        assert_eq!(p95, 512, "p95 of the 95th sample at latency 300");
        assert!(p50 < p95 && p95 < 8192, "percentiles clamped to p100");
        let json = metrics_json("m", "s", &sink);
        assert!(json.contains("\"p50\":16,\"p95\":512,"));
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_counts() {
        let json = metrics_json("mix \"a\"", "fq-vftf", &sample_sink());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"label\":\"mix \\\"a\\\"\""));
        assert!(json.contains("\"reads\":2"));
        assert!(json.contains("\"nacks\":1"));
        assert!(json.contains("\"log2_buckets\":[[16,2]]"));
        // Balanced braces/brackets (cheap structural sanity check).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fault_columns_round_trip_through_both_exporters() {
        let mut sink = sample_sink();
        sink.observe(&Event::RequestDropped {
            cycle: 50,
            thread: 1,
            id: 9,
            is_write: false,
        });
        sink.observe(&Event::StarvationDetected {
            cycle: 60,
            thread: 0,
            stalled_for: 4_096,
        });
        sink.observe(&Event::FaultInjected {
            cycle: 40,
            kind: fqms_sim::fault::FaultKind::RequestDrop,
            until: 41,
            bank: None,
        });
        let tsv = metrics_tsv("m", "s", &sink);
        let drops_col = TSV_HEADER.split('\t').position(|c| c == "drops").unwrap();
        let rows: Vec<Vec<&str>> = tsv.lines().map(|l| l.split('\t').collect()).collect();
        assert_eq!(rows[0][drops_col], "0");
        assert_eq!(rows[0][drops_col + 1], "1"); // thread 0 starved once
        assert_eq!(rows[1][drops_col], "1"); // thread 1 dropped once
        assert_eq!(rows[1][drops_col + 1], "0");
        assert_eq!(rows[2][drops_col], "1"); // "all" row merges both
        assert_eq!(rows[2][drops_col + 1], "1");
        assert!(tsv.contains("faults=1"));
        let json = metrics_json("m", "s", &sink);
        assert!(json.contains("\"faults_injected\":1"));
        assert!(json.contains("\"drops\":1,\"starved\":0"));
        assert!(json.contains("\"drops\":0,\"starved\":1"));
    }

    #[test]
    fn slowdown_columns_round_trip_through_both_exporters() {
        // Thread 0: alone 28, shared 22 → clamps to 1.0.
        // Thread 1: alone 14, shared 300 → slowdown 300/14.
        let sink = sample_sink();
        let tsv = metrics_tsv("m", "s", &sink);
        let alone_col = TSV_HEADER
            .split('\t')
            .position(|c| c == "alone_est")
            .unwrap();
        let rows: Vec<Vec<&str>> = tsv.lines().map(|l| l.split('\t').collect()).collect();
        assert_eq!(rows[0][alone_col], "28");
        assert_eq!(rows[0][alone_col + 1], "22");
        assert_eq!(rows[0][alone_col + 2], "1.000");
        assert_eq!(rows[1][alone_col], "14");
        assert_eq!(rows[1][alone_col + 1], "300");
        assert_eq!(rows[1][alone_col + 2], "21.429");
        // The "all" summary row merges the accumulators and reports the
        // channel fairness indices in its trailing comment.
        assert_eq!(rows[2][alone_col], "42");
        assert!(tsv.contains("max_slowdown=21.429"));
        assert!(tsv.contains("hspeedup="));
        let json = metrics_json("m", "s", &sink);
        assert!(json.contains("\"alone_cycles_est\":14,\"shared_cycles\":300,"));
        assert!(json.contains("\"max_slowdown\":21.428571,"));
        assert!(json.contains("\"harmonic_speedup\":"));
    }

    #[test]
    fn overload_columns_round_trip_through_both_exporters() {
        // Satellite 2 (ISSUE 10): rejected/shed/throttled are first-class
        // columns, and the per-thread TSV totals agree with the sink's
        // counters (conservation accounting reads these back).
        let mut sink = sample_sink();
        sink.observe(&Event::Throttled {
            cycle: 20,
            thread: 1,
            retry_after: 64,
        });
        sink.observe(&Event::Shed {
            cycle: 21,
            thread: 1,
            is_write: true,
            class: 0,
        });
        sink.observe(&Event::Shed {
            cycle: 22,
            thread: 1,
            is_write: false,
            class: 1,
        });
        sink.observe(&Event::Rejected {
            cycle: 23,
            thread: 0,
            is_write: false,
        });
        sink.observe(&Event::SaturationEntered {
            cycle: 24,
            level: 1,
        });
        sink.observe(&Event::SaturationExited {
            cycle: 30,
            level: 0,
        });
        for col in ["rejected", "shed", "throttled"] {
            assert!(
                TSV_HEADER.split('\t').any(|c| c == col),
                "missing column {col}"
            );
        }
        let rej_col = TSV_HEADER
            .split('\t')
            .position(|c| c == "rejected")
            .unwrap();
        let tsv = metrics_tsv("m", "s", &sink);
        let rows: Vec<Vec<&str>> = tsv.lines().map(|l| l.split('\t').collect()).collect();
        assert_eq!(rows[0][rej_col..rej_col + 3], ["1", "0", "0"]);
        assert_eq!(rows[1][rej_col..rej_col + 3], ["0", "2", "1"]);
        // "all" row sums the per-thread columns — the conservation check in
        // the bench gates relies on this agreement.
        assert_eq!(rows[2][rej_col..rej_col + 3], ["1", "2", "1"]);
        // A throttle refusal is a NACK; a shed is not (it is a drop-class
        // terminal refusal). Thread 1 had one buffer NACK + one throttle.
        let nacks_col = TSV_HEADER.split('\t').position(|c| c == "nacks").unwrap();
        assert_eq!(rows[1][nacks_col], "2");
        assert!(tsv.contains("sat_in=1 sat_out=1"));
        let json = metrics_json("m", "s", &sink);
        assert!(json.contains("\"rejected\":0,\"shed\":2,\"throttled\":1,"));
        assert!(json.contains("\"rejected\":1,\"shed\":0,\"throttled\":0,"));
        assert!(json.contains("\"saturation_entries\":1,\"saturation_exits\":1,"));
    }

    #[test]
    fn empty_sink_exports_cleanly() {
        let sink = MetricsSink::new(1);
        let tsv = metrics_tsv("m", "s", &sink);
        assert!(tsv.lines().next().unwrap().ends_with("\t-"));
        let json = metrics_json("m", "s", &sink);
        assert!(json.contains("\"log2_buckets\":[]"));
    }
}
