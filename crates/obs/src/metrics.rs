//! Per-thread metric sinks derived from the event stream.
//!
//! A [`MetricsSink`] folds [`Event`]s into per-thread aggregates: log2
//! latency histograms, bandwidth counters, queue-depth gauges, and the
//! drift between a thread's virtual finish times and real time (how far
//! ahead of the wall clock the VTMS model is running — the fairness
//! mechanism's "lead"). Sinks from independent channels merge exactly; the
//! only floating-point state (the drift summary) merges deterministically
//! for a fixed merge order, and the engine always merges in channel-index
//! order.

use crate::event::Event;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};
use fqms_sim::stats::{Log2Histogram, Summary};

/// One thread's observed metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThreadSink {
    /// Demand reads completed.
    pub reads_completed: u64,
    /// Writebacks completed (at CAS issue).
    pub writes_completed: u64,
    /// Admission rejections (retries count individually).
    pub nacks: u64,
    /// Payload bytes moved for this thread (completions × line size).
    pub bytes: u64,
    /// Read round-trip latency distribution, log2 buckets.
    pub read_latency: Log2Histogram,
    /// Write (issue) latency distribution, log2 buckets.
    pub write_latency: Log2Histogram,
    /// Sum of bank-queue depths sampled at this thread's arrivals.
    pub queue_depth_sum: u64,
    /// Number of queue-depth samples (= admitted requests).
    pub queue_depth_samples: u64,
    /// Deepest bank queue this thread ever joined.
    pub queue_depth_max: u32,
    /// Distribution of `vft - cycle` at VFT-binding time: virtual-time
    /// lead over real time, in cycles.
    pub vft_drift: Summary,
    /// Requests dropped by fault injection (never completed).
    pub requests_dropped: u64,
    /// Starvation-watchdog firings (one per detected stall episode).
    pub starvations: u64,
    /// Estimated alone-service cycles summed over completions (the
    /// slowdown denominator, ISSUE 7).
    pub alone_cycles_est: u64,
    /// Measured shared latency cycles summed over completions (the
    /// slowdown numerator).
    pub shared_cycles: u64,
    /// Requests abandoned by a submission port after retry exhaustion
    /// (ISSUE 10): the `rejected` term of the conservation law.
    pub rejected: u64,
    /// Requests dropped by the tiered load shedder (ISSUE 10): the
    /// `shed` term of the conservation law.
    pub shed: u64,
    /// Admission-throttle refusals (ISSUE 10); the requester retries,
    /// so one logical request may count many times.
    pub throttled: u64,
}

impl ThreadSink {
    /// Mean bank-queue depth at this thread's arrivals; 0.0 if it never
    /// arrived.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Total requests completed.
    pub fn completed(&self) -> u64 {
        self.reads_completed + self.writes_completed
    }

    /// Estimated slowdown (shared / alone cycles, clamped >= 1.0); 1.0
    /// before any completion. Same semantics as
    /// `fqms_memctrl::stats::ThreadStats::slowdown`.
    pub fn slowdown(&self) -> f64 {
        if self.alone_cycles_est == 0 {
            1.0
        } else {
            (self.shared_cycles as f64 / self.alone_cycles_est as f64).max(1.0)
        }
    }

    /// Merges another sink for the same thread into this one.
    pub fn merge(&mut self, other: &ThreadSink) {
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.nacks += other.nacks;
        self.bytes += other.bytes;
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.queue_depth_sum += other.queue_depth_sum;
        self.queue_depth_samples += other.queue_depth_samples;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.vft_drift.merge(&other.vft_drift);
        self.requests_dropped += other.requests_dropped;
        self.starvations += other.starvations;
        self.alone_cycles_est += other.alone_cycles_est;
        self.shared_cycles += other.shared_cycles;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.throttled += other.throttled;
    }
}

/// Metrics for every thread of one observed entity (a channel, or a merge
/// of channels), plus channel-level counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSink {
    per_thread: Vec<ThreadSink>,
    /// SDRAM commands issued (all classes, owned and unowned).
    pub commands_issued: u64,
    /// Priority-inversion-bound trips (FQ bank scheduler lock
    /// engagements).
    pub inversion_locks: u64,
    /// Fault episodes injected on the channel (all classes).
    pub faults_injected: u64,
    /// Regulated completions observed above their class's WCET bound
    /// (ISSUE 9) — the release gates assert this stays zero.
    pub bound_violations: u64,
    /// Overload saturation-detector escalations (ISSUE 10).
    pub saturation_entries: u64,
    /// Overload saturation-detector de-escalations (ISSUE 10).
    pub saturation_exits: u64,
}

impl MetricsSink {
    /// Creates a sink pre-sized for `num_threads` threads (it grows on
    /// demand if an event names a higher thread index).
    pub fn new(num_threads: usize) -> Self {
        MetricsSink {
            per_thread: (0..num_threads).map(|_| ThreadSink::default()).collect(),
            commands_issued: 0,
            inversion_locks: 0,
            faults_injected: 0,
            bound_violations: 0,
            saturation_entries: 0,
            saturation_exits: 0,
        }
    }

    fn thread_mut(&mut self, thread: u32) -> &mut ThreadSink {
        let idx = thread as usize;
        if idx >= self.per_thread.len() {
            self.per_thread.resize_with(idx + 1, ThreadSink::default);
        }
        &mut self.per_thread[idx]
    }

    /// One thread's metrics.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn thread(&self, thread: u32) -> &ThreadSink {
        &self.per_thread[thread as usize]
    }

    /// Number of tracked threads.
    pub fn num_threads(&self) -> usize {
        self.per_thread.len()
    }

    /// Iterates `(thread_index, sink)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &ThreadSink)> {
        self.per_thread
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s))
    }

    /// Folds one event into the aggregates.
    pub fn observe(&mut self, event: &Event) {
        match *event {
            Event::Arrival {
                thread,
                queue_depth,
                ..
            } => {
                let t = self.thread_mut(thread);
                t.queue_depth_sum += queue_depth as u64;
                t.queue_depth_samples += 1;
                t.queue_depth_max = t.queue_depth_max.max(queue_depth);
            }
            Event::Nack { thread, .. } => self.thread_mut(thread).nacks += 1,
            Event::VftBound {
                cycle, thread, vft, ..
            } => {
                self.thread_mut(thread).vft_drift.record(vft - cycle as f64);
            }
            Event::InversionLock { .. } => self.inversion_locks += 1,
            Event::CommandIssued { .. } => self.commands_issued += 1,
            Event::Completed {
                thread,
                is_write,
                latency,
                bytes,
                alone_cycles,
                ..
            } => {
                let t = self.thread_mut(thread);
                t.bytes += bytes;
                t.alone_cycles_est += alone_cycles;
                t.shared_cycles += latency;
                if is_write {
                    t.writes_completed += 1;
                    t.write_latency.record(latency);
                } else {
                    t.reads_completed += 1;
                    t.read_latency.record(latency);
                }
            }
            Event::FaultInjected { .. } => self.faults_injected += 1,
            Event::RequestDropped { thread, .. } => {
                self.thread_mut(thread).requests_dropped += 1;
            }
            Event::StarvationDetected { thread, .. } => {
                self.thread_mut(thread).starvations += 1;
            }
            Event::BoundExceeded { .. } => self.bound_violations += 1,
            Event::Throttled { thread, .. } => {
                let t = self.thread_mut(thread);
                t.nacks += 1;
                t.throttled += 1;
            }
            Event::Shed { thread, .. } => self.thread_mut(thread).shed += 1,
            Event::Rejected { thread, .. } => self.thread_mut(thread).rejected += 1,
            Event::SaturationEntered { .. } => self.saturation_entries += 1,
            Event::SaturationExited { .. } => self.saturation_exits += 1,
        }
    }

    /// Merges another sink into this one, thread by thread. Call in a
    /// fixed order (the engine uses channel-index order) for bit-identical
    /// merged drift summaries.
    pub fn merge(&mut self, other: &MetricsSink) {
        if other.per_thread.len() > self.per_thread.len() {
            self.per_thread
                .resize_with(other.per_thread.len(), ThreadSink::default);
        }
        for (mine, theirs) in self.per_thread.iter_mut().zip(&other.per_thread) {
            mine.merge(theirs);
        }
        self.commands_issued += other.commands_issued;
        self.inversion_locks += other.inversion_locks;
        self.faults_injected += other.faults_injected;
        self.bound_violations += other.bound_violations;
        self.saturation_entries += other.saturation_entries;
        self.saturation_exits += other.saturation_exits;
    }

    /// Zeroes every aggregate, keeping the thread count.
    pub fn reset(&mut self) {
        let n = self.per_thread.len();
        *self = MetricsSink::new(n);
    }

    /// The maximum estimated slowdown across threads that completed at
    /// least one request (1.0 when idle) — the unfairness index of
    /// ISSUE 7's frontier.
    pub fn max_slowdown(&self) -> f64 {
        self.per_thread
            .iter()
            .filter(|t| t.alone_cycles_est > 0)
            .map(ThreadSink::slowdown)
            .fold(1.0, f64::max)
    }

    /// Harmonic mean of per-thread speedups (`n / Σ slowdown_t` over
    /// threads with completions): 1.0 is perfectly fair, lower means some
    /// thread pays disproportionately. 1.0 when idle.
    pub fn harmonic_speedup(&self) -> f64 {
        let slowdowns: Vec<f64> = self
            .per_thread
            .iter()
            .filter(|t| t.alone_cycles_est > 0)
            .map(ThreadSink::slowdown)
            .collect();
        if slowdowns.is_empty() {
            1.0
        } else {
            slowdowns.len() as f64 / slowdowns.iter().sum::<f64>()
        }
    }

    /// Rolls the per-thread sinks up into `num_groups` merged sinks —
    /// the observability side of hierarchical (tenant → thread) share
    /// trees, where `group_of(thread)` maps each thread to its tenant.
    /// Threads are merged in thread order, so repeated rollups of the
    /// same sink are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `group_of` maps any thread outside `0..num_groups`.
    pub fn group_totals<F>(&self, num_groups: usize, group_of: F) -> Vec<ThreadSink>
    where
        F: Fn(u32) -> usize,
    {
        let mut groups: Vec<ThreadSink> = (0..num_groups).map(|_| ThreadSink::default()).collect();
        for (t, sink) in self.iter() {
            groups[group_of(t)].merge(sink);
        }
        groups
    }
}

impl Snapshot for ThreadSink {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.reads_completed);
        w.put_u64(self.writes_completed);
        w.put_u64(self.nacks);
        w.put_u64(self.bytes);
        self.read_latency.save(w);
        self.write_latency.save(w);
        w.put_u64(self.queue_depth_sum);
        w.put_u64(self.queue_depth_samples);
        w.put_u32(self.queue_depth_max);
        self.vft_drift.save(w);
        w.put_u64(self.requests_dropped);
        w.put_u64(self.starvations);
        w.put_u64(self.alone_cycles_est);
        w.put_u64(self.shared_cycles);
        w.put_u64(self.rejected);
        w.put_u64(self.shed);
        w.put_u64(self.throttled);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.reads_completed = r.get_u64()?;
        self.writes_completed = r.get_u64()?;
        self.nacks = r.get_u64()?;
        self.bytes = r.get_u64()?;
        self.read_latency.restore(r)?;
        self.write_latency.restore(r)?;
        self.queue_depth_sum = r.get_u64()?;
        self.queue_depth_samples = r.get_u64()?;
        self.queue_depth_max = r.get_u32()?;
        self.vft_drift.restore(r)?;
        self.requests_dropped = r.get_u64()?;
        self.starvations = r.get_u64()?;
        self.alone_cycles_est = r.get_u64()?;
        self.shared_cycles = r.get_u64()?;
        self.rejected = r.get_u64()?;
        self.shed = r.get_u64()?;
        self.throttled = r.get_u64()?;
        Ok(())
    }
}

/// The thread vector grows on demand during a run, so its length is state,
/// not configuration: restore resizes to the serialized thread count.
impl Snapshot for MetricsSink {
    fn save(&self, w: &mut SectionWriter) {
        w.put_seq_len(self.per_thread.len());
        for t in &self.per_thread {
            t.save(w);
        }
        w.put_u64(self.commands_issued);
        w.put_u64(self.inversion_locks);
        w.put_u64(self.faults_injected);
        w.put_u64(self.bound_violations);
        w.put_u64(self.saturation_entries);
        w.put_u64(self.saturation_exits);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let n = r.seq_len()?;
        let mut per_thread = Vec::with_capacity(n);
        for _ in 0..n {
            let mut t = ThreadSink::default();
            t.restore(r)?;
            per_thread.push(t);
        }
        self.per_thread = per_thread;
        self.commands_issued = r.get_u64()?;
        self.inversion_locks = r.get_u64()?;
        self.faults_injected = r.get_u64()?;
        self.bound_violations = r.get_u64()?;
        self.saturation_entries = r.get_u64()?;
        self.saturation_exits = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(thread: u32, latency: u64, is_write: bool) -> Event {
        Event::Completed {
            cycle: 100,
            thread,
            id: 0,
            is_write,
            latency,
            bytes: 64,
            alone_cycles: 14,
        }
    }

    #[test]
    fn folds_completions_into_histograms() {
        let mut sink = MetricsSink::new(2);
        sink.observe(&completed(0, 15, false));
        sink.observe(&completed(0, 200, false));
        sink.observe(&completed(1, 9, true));
        let t0 = sink.thread(0);
        assert_eq!(t0.reads_completed, 2);
        assert_eq!(t0.read_latency.count(), 2);
        assert_eq!(t0.bytes, 128);
        assert!((t0.read_latency.mean() - 107.5).abs() < 1e-12);
        let t1 = sink.thread(1);
        assert_eq!(t1.writes_completed, 1);
        assert_eq!(t1.write_latency.count(), 1);
    }

    #[test]
    fn queue_depth_gauge_samples_at_arrival() {
        let mut sink = MetricsSink::new(1);
        for depth in [1u32, 4, 2] {
            sink.observe(&Event::Arrival {
                cycle: 1,
                thread: 0,
                id: 0,
                is_write: false,
                bank: 3,
                queue_depth: depth,
            });
        }
        let t = sink.thread(0);
        assert_eq!(t.queue_depth_max, 4);
        assert_eq!(t.queue_depth_samples, 3);
        assert!((t.mean_queue_depth() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn drift_tracks_virtual_minus_real() {
        let mut sink = MetricsSink::new(1);
        sink.observe(&Event::VftBound {
            cycle: 100,
            thread: 0,
            id: 0,
            vft: 130.0,
        });
        sink.observe(&Event::VftBound {
            cycle: 200,
            thread: 0,
            id: 1,
            vft: 210.0,
        });
        let d = &sink.thread(0).vft_drift;
        assert_eq!(d.count(), 2);
        assert!((d.mean() - 20.0).abs() < 1e-12);
        assert_eq!(d.min(), 10.0);
        assert_eq!(d.max(), 30.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let events: Vec<Event> = (0..40)
            .map(|i| completed(i % 3, 10 + i as u64 * 7, i % 4 == 0))
            .collect();
        let mut whole = MetricsSink::new(3);
        for e in &events {
            whole.observe(e);
        }
        let mut a = MetricsSink::new(3);
        let mut b = MetricsSink::new(3);
        for (i, e) in events.iter().enumerate() {
            if i < 17 {
                a.observe(e)
            } else {
                b.observe(e)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn grows_for_unseen_threads_and_resets() {
        let mut sink = MetricsSink::new(1);
        sink.observe(&completed(5, 12, false));
        assert_eq!(sink.num_threads(), 6);
        assert_eq!(sink.thread(5).reads_completed, 1);
        sink.reset();
        assert_eq!(sink.num_threads(), 6);
        assert_eq!(sink.thread(5).reads_completed, 0);
    }

    #[test]
    fn counts_commands_and_locks() {
        let mut sink = MetricsSink::new(1);
        sink.observe(&Event::CommandIssued {
            cycle: 1,
            kind: fqms_dram::command::CommandKind::Activate,
            bank: Some(0),
            thread: Some(0),
            id: Some(0),
        });
        sink.observe(&Event::InversionLock {
            cycle: 20,
            bank: 0,
            active_for: 18,
        });
        assert_eq!(sink.commands_issued, 1);
        assert_eq!(sink.inversion_locks, 1);
    }

    #[test]
    fn slowdown_indices_from_completions() {
        let mut sink = MetricsSink::new(3);
        // Thread 0: alone 28, shared 84 → slowdown 3.0.
        sink.observe(&completed(0, 42, false));
        sink.observe(&completed(0, 42, false));
        // Thread 1: alone 14, shared 7 → clamps to 1.0.
        sink.observe(&completed(1, 7, true));
        // Thread 2 idle: excluded from both indices.
        assert_eq!(sink.thread(0).slowdown(), 3.0);
        assert_eq!(sink.thread(1).slowdown(), 1.0);
        assert_eq!(sink.thread(2).slowdown(), 1.0);
        assert_eq!(sink.max_slowdown(), 3.0);
        assert!((sink.harmonic_speedup() - 2.0 / 4.0).abs() < 1e-12);
        let idle = MetricsSink::new(4);
        assert_eq!(idle.max_slowdown(), 1.0);
        assert_eq!(idle.harmonic_speedup(), 1.0);
    }

    #[test]
    fn overload_events_fold_into_counters() {
        let mut sink = MetricsSink::new(2);
        sink.observe(&Event::Throttled {
            cycle: 1,
            thread: 0,
            retry_after: 99,
        });
        sink.observe(&Event::Shed {
            cycle: 2,
            thread: 1,
            is_write: true,
            class: 0,
        });
        sink.observe(&Event::Rejected {
            cycle: 3,
            thread: 0,
            is_write: false,
        });
        sink.observe(&Event::SaturationEntered { cycle: 4, level: 1 });
        sink.observe(&Event::SaturationExited { cycle: 5, level: 0 });
        assert_eq!(sink.thread(0).throttled, 1);
        assert_eq!(sink.thread(0).nacks, 1, "a throttle refusal is a NACK");
        assert_eq!(sink.thread(1).shed, 1);
        assert_eq!(sink.thread(1).nacks, 0, "a shed is a drop, not a NACK");
        assert_eq!(sink.thread(0).rejected, 1);
        assert_eq!(sink.saturation_entries, 1);
        assert_eq!(sink.saturation_exits, 1);
    }

    #[test]
    fn group_totals_merge_by_tenant() {
        let mut sink = MetricsSink::new(4);
        for t in 0..4 {
            for _ in 0..=t {
                sink.observe(&completed(t, 10 + u64::from(t), false));
            }
        }
        // Tenants of 2 threads each: totals are the member sums.
        let tenants = sink.group_totals(2, |t| (t / 2) as usize);
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].reads_completed, 1 + 2);
        assert_eq!(tenants[1].reads_completed, 3 + 4);
        let all: u64 = tenants.iter().map(|g| g.reads_completed).sum();
        let per_thread: u64 = sink.iter().map(|(_, s)| s.reads_completed).sum();
        assert_eq!(all, per_thread, "rollup must conserve completions");
    }
}
