//! The [`Observer`] trait and its two canonical implementations.
//!
//! The trait carries a `const ENABLED` flag so hot paths can guard every
//! emission with `if O::ENABLED { ... }`. For [`NullObserver`] that
//! constant is `false`, the branch folds away at monomorphization time,
//! and the observed code paths compile to exactly the unobserved machine
//! code — zero overhead, checked by the `obs_overhead` bench and its guard
//! test in `fqms-bench`.

use crate::event::{Event, EventRing};
use crate::metrics::MetricsSink;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// A sink for scheduler events.
///
/// Implementations must be passive: observing an event must never change
/// simulation state. The controller guarantees the reverse direction — the
/// event stream it emits is a pure function of the simulation, so two runs
/// that simulate identically observe identically.
pub trait Observer {
    /// Whether this observer records anything. Hot paths guard event
    /// construction with `if O::ENABLED`, so a `false` here removes the
    /// emission code entirely at compile time.
    const ENABLED: bool;

    /// Receives one event. Never called when [`Self::ENABLED`] is honored
    /// by the caller and `false`.
    fn on_event(&mut self, event: &Event);
}

/// The do-nothing observer: `ENABLED = false`, so observed code paths
/// monomorphize to the exact unobserved machine code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_event(&mut self, _event: &Event) {}
}

/// The recording observer: retains the most recent events in a bounded
/// ring and folds every event into a [`MetricsSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct TracingObserver {
    events: EventRing,
    metrics: MetricsSink,
}

impl TracingObserver {
    /// Creates a tracing observer retaining up to `event_capacity` events
    /// and pre-sized for `num_threads` threads.
    pub fn new(event_capacity: usize, num_threads: usize) -> Self {
        TracingObserver {
            events: EventRing::new(event_capacity),
            metrics: MetricsSink::new(num_threads),
        }
    }

    /// The retained event stream.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// The accumulated metrics.
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Drops retained events and zeroes the metrics (used when a
    /// measurement window starts after warm-up).
    pub fn reset(&mut self) {
        self.events.clear();
        self.metrics.reset();
    }

    /// Consumes the observer, yielding its parts.
    pub fn into_parts(self) -> (EventRing, MetricsSink) {
        (self.events, self.metrics)
    }
}

impl Observer for TracingObserver {
    const ENABLED: bool = true;

    #[inline]
    fn on_event(&mut self, event: &Event) {
        self.events.record(event);
        self.metrics.observe(event);
    }
}

impl Snapshot for TracingObserver {
    fn save(&self, w: &mut SectionWriter) {
        self.events.save(w);
        self.metrics.save(w);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.events.restore(r)?;
        self.metrics.restore(r)
    }
}

/// The observational output of a (possibly multi-channel) run: one event
/// stream per channel, in channel-index order, plus the metrics merged in
/// that same order. Bit-identical between serial and parallel execution of
/// the sharded engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Observations {
    /// Per-channel event streams, indexed by channel.
    pub event_streams: Vec<EventRing>,
    /// Metrics merged across channels in channel-index order.
    pub metrics: MetricsSink,
}

impl Observations {
    /// Builds observations from per-channel observers, merging metrics in
    /// the order given (callers pass channel-index order).
    pub fn merge_channels<I>(observers: I) -> Self
    where
        I: IntoIterator<Item = TracingObserver>,
    {
        let mut out = Observations::default();
        for obs in observers {
            let (events, metrics) = obs.into_parts();
            out.event_streams.push(events);
            out.metrics.merge(&metrics);
        }
        out
    }

    /// Total events recorded across all channels (including evicted ones).
    pub fn total_events(&self) -> u64 {
        self.event_streams
            .iter()
            .map(EventRing::total_recorded)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compile-time tripwires: the hot paths rely on these flags to
    // monomorphize observation away (or in).
    const _: () = assert!(!NullObserver::ENABLED);
    const _: () = assert!(TracingObserver::ENABLED);

    #[test]
    fn null_observer_is_disabled() {
        // on_event is callable and inert.
        NullObserver.on_event(&Event::Nack {
            cycle: 0,
            thread: 0,
            is_write: false,
        });
    }

    #[test]
    fn tracing_observer_records_and_aggregates() {
        let mut obs = TracingObserver::new(8, 2);
        obs.on_event(&Event::Completed {
            cycle: 50,
            thread: 1,
            id: 7,
            is_write: false,
            latency: 20,
            bytes: 64,
            alone_cycles: 14,
        });
        assert_eq!(obs.events().len(), 1);
        assert_eq!(obs.metrics().thread(1).reads_completed, 1);
        obs.reset();
        assert!(obs.events().is_empty());
        assert_eq!(obs.metrics().thread(1).reads_completed, 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_events_and_metrics() {
        use fqms_dram::command::CommandKind;
        use fqms_sim::fault::FaultKind;
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};

        let mut obs = TracingObserver::new(16, 2);
        let events = [
            Event::Arrival {
                cycle: 1,
                thread: 0,
                id: 10,
                is_write: false,
                bank: 3,
                queue_depth: 2,
            },
            Event::Nack {
                cycle: 2,
                thread: 1,
                is_write: true,
            },
            Event::VftBound {
                cycle: 3,
                thread: 0,
                id: 10,
                vft: 40.25,
            },
            Event::InversionLock {
                cycle: 4,
                bank: 3,
                active_for: 20,
            },
            Event::CommandIssued {
                cycle: 5,
                kind: CommandKind::Refresh,
                bank: None,
                thread: None,
                id: None,
            },
            Event::Completed {
                cycle: 6,
                thread: 0,
                id: 10,
                is_write: false,
                latency: 5,
                bytes: 64,
                alone_cycles: 14,
            },
            Event::FaultInjected {
                cycle: 7,
                kind: FaultKind::BankStall,
                until: 30,
                bank: Some(1),
            },
            Event::RequestDropped {
                cycle: 8,
                thread: 1,
                id: 11,
                is_write: true,
            },
            Event::StarvationDetected {
                cycle: 9,
                thread: 1,
                stalled_for: 5_000,
            },
        ];
        for e in &events {
            obs.on_event(e);
        }

        let mut w = SnapshotWriter::new(7);
        w.section("obs", |s| obs.save(s));
        let bytes = w.into_bytes();

        let mut restored = TracingObserver::new(16, 2);
        let mut r = SnapshotReader::new(&bytes, 7).unwrap();
        r.section("obs", |s| restored.restore(s)).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, obs);
    }

    #[test]
    fn merge_channels_keeps_streams_separate_and_merges_metrics() {
        let mut a = TracingObserver::new(4, 1);
        let mut b = TracingObserver::new(4, 1);
        a.on_event(&Event::Nack {
            cycle: 1,
            thread: 0,
            is_write: false,
        });
        b.on_event(&Event::Nack {
            cycle: 2,
            thread: 0,
            is_write: true,
        });
        b.on_event(&Event::Nack {
            cycle: 3,
            thread: 0,
            is_write: true,
        });
        let merged = Observations::merge_channels([a, b]);
        assert_eq!(merged.event_streams.len(), 2);
        assert_eq!(merged.event_streams[0].len(), 1);
        assert_eq!(merged.event_streams[1].len(), 2);
        assert_eq!(merged.metrics.thread(0).nacks, 3);
        assert_eq!(merged.total_events(), 3);
    }
}
