//! # fqms-obs — zero-overhead observability for the FQMS simulator
//!
//! A structured, deterministic event-tracing and metrics subsystem for
//! the fair-queuing memory-system model:
//!
//! * [`event`] — the flat [`Event`] vocabulary (request
//!   arrival/NACK, VFT binding, inversion-bound trips, SDRAM command
//!   issue, completion) and the bounded [`EventRing`]
//!   that retains the most recent events per channel.
//! * [`observer`] — the [`Observer`] trait with a
//!   `const ENABLED` flag. [`NullObserver`]
//!   carries `ENABLED = false`, so every `if O::ENABLED { ... }` guard in
//!   the controller folds away and the observed code paths compile to the
//!   unobserved machine code: observability is free unless you ask for it.
//!   [`TracingObserver`] records events and
//!   folds them into metrics.
//! * [`metrics`] — per-thread [`MetricsSink`]s:
//!   log2 latency histograms, bandwidth counters, queue-depth gauges, and
//!   VTMS virtual-vs-real-time drift. Sinks merge deterministically in
//!   channel-index order, exactly like the controller's stats, so serial
//!   and channel-sharded parallel runs produce bit-identical merged
//!   metrics.
//! * [`export`] — hand-rolled TSV and JSON emitters (the workspace is
//!   hermetic; no serde) used by `run_figures.sh` metric sidecars and the
//!   `speedup` bench.
//!
//! ## Determinism contract
//!
//! One [`EventRing`] describes one channel. Streams from
//! different channels are never interleaved into a single totally-ordered
//! log — cross-channel event order is an artifact of scheduling, not of
//! the simulated machine. Compositions keep `Vec<EventRing>` indexed by
//! channel and merge metrics in channel-index order
//! ([`Observations`]); under those rules the
//! parallel engine's observations are bit-identical to serial execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod observer;

pub use event::{Event, EventRing};
pub use export::{metrics_json, metrics_tsv, TSV_HEADER};
pub use metrics::{MetricsSink, ThreadSink};
pub use observer::{NullObserver, Observations, Observer, TracingObserver};
