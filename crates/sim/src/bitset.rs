//! A dense fixed-capacity bit set over small indices.
//!
//! The scheduler hot loops iterate "banks with pending work" and "banks
//! with an open row" every stepped cycle. Keeping those populations as
//! packed bit masks turns the per-cycle scan from a walk over every bank
//! (touching a queue header or a bank struct per probe) into a word-wise
//! sweep that visits only set bits — and the union of two masks is a
//! per-word OR, so "occupied or open, in ascending index order" costs one
//! pass with no allocation.
//!
//! Ascending iteration order is load-bearing for the controller: channel
//! arbitration breaks priority ties by first-proposer, so masked loops
//! must visit banks in exactly the order the dense loop did.
//!
//! # Example
//!
//! ```
//! use fqms_sim::bitset::DenseBitSet;
//!
//! let mut occupied = DenseBitSet::new(16);
//! let mut open = DenseBitSet::new(16);
//! occupied.insert(3);
//! occupied.insert(9);
//! open.insert(9);
//! open.insert(12);
//! let visit: Vec<usize> = occupied.union_iter(&open).collect();
//! assert_eq!(visit, vec![3, 9, 12]);
//! occupied.remove(9);
//! assert!(!occupied.contains(9));
//! ```

/// A fixed-capacity set of `usize` indices stored as packed 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl DenseBitSet {
    /// An empty set holding indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        DenseBitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Number of indices the set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `idx` into the set.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity`.
    pub fn insert(&mut self, idx: usize) {
        assert!(
            idx < self.capacity,
            "index {idx} >= capacity {}",
            self.capacity
        );
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Removes `idx` from the set (a no-op if absent).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity`.
    pub fn remove(&mut self, idx: usize) {
        assert!(
            idx < self.capacity,
            "index {idx} >= capacity {}",
            self.capacity
        );
        self.words[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Whether `idx` is in the set.
    pub fn contains(&self, idx: usize) -> bool {
        idx < self.capacity && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set holds no indices.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the set's indices in ascending order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            other: None,
        }
    }

    /// Iterates the indices of `self ∪ other` in ascending order without
    /// materialising the union.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_iter<'a>(&'a self, other: &'a DenseBitSet) -> BitIter<'a> {
        assert_eq!(
            self.capacity, other.capacity,
            "union over sets of different capacity"
        );
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0)
                | other.words.first().copied().unwrap_or(0),
            other: Some(&other.words),
        }
    }
}

/// Ascending-order index iterator over one set or a union of two (see
/// [`DenseBitSet::iter`] / [`DenseBitSet::union_iter`]).
#[derive(Debug, Clone)]
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    other: Option<&'a [u64]>,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx] | self.other.map_or(0, |o| o[self.word_idx]);
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new(130);
        for i in [0usize, 63, 64, 65, 127, 128, 129] {
            assert!(!s.contains(i));
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.len(), 7);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 6);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_ascending() {
        let mut s = DenseBitSet::new(200);
        let idxs = [199usize, 0, 63, 64, 100, 128];
        for &i in &idxs {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        let mut want = idxs.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn union_iter_matches_naive_union() {
        let mut a = DenseBitSet::new(150);
        let mut b = DenseBitSet::new(150);
        for i in (0..150).step_by(7) {
            a.insert(i);
        }
        for i in (0..150).step_by(5) {
            b.insert(i);
        }
        let got: Vec<usize> = a.union_iter(&b).collect();
        let want: Vec<usize> = (0..150).filter(|&i| i % 7 == 0 || i % 5 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_full_sets() {
        let s = DenseBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let mut f = DenseBitSet::new(64);
        for i in 0..64 {
            f.insert(i);
        }
        assert_eq!(f.iter().collect::<Vec<_>>(), (0..64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        DenseBitSet::new(10).insert(10);
    }
}
