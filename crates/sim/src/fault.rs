//! Deterministic fault-injection plans and their compiled timelines.
//!
//! A [`FaultPlan`] is a declarative description of adversarial conditions
//! — NACK storms at the admission port, transient bank-busy stalls,
//! refresh-deadline pressure, and request drops — expressed as seeded
//! stochastic processes over cycle windows. A [`FaultInjector`] *compiles*
//! the plan into a sorted per-kind timeline of [`Episode`]s up front, using
//! one forked [`SimRng`] stream per [`FaultSpec`]. All randomness is spent
//! at compile time: runtime queries are cursor walks over the precomputed
//! timeline and draw nothing, so
//!
//! * an empty plan consumes zero random numbers and perturbs nothing — a
//!   faulted build with no plan is bit-identical to the pre-fault code;
//! * the injected schedule is a pure function of `(plan, seed)`, identical
//!   under serial, parallel, and event-driven (fast-forward) execution;
//! * [`FaultInjector::next_boundary`] exposes every future episode edge,
//!   so an event-driven simulator can refuse to skip over the cycle where
//!   a fault begins or ends (the fast-forward equivalence contract).
//!
//! The consumer (the memory controller in `fqms-memctrl`) decides what an
//! episode of each kind *means*; this module only decides *when* faults
//! happen, deterministically.

use crate::rng::SimRng;
use crate::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// The class of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The admission port rejects every submission for the episode's
    /// duration, as if the transaction buffers were full.
    NackStorm,
    /// One bank (chosen by the episode's selector) is held busy for the
    /// episode's duration: its bank scheduler proposes nothing.
    BankStall,
    /// Refresh is forced urgent for the episode's duration, starving
    /// normal traffic of the channel (a refresh-deadline storm).
    RefreshPressure,
    /// One queued request (chosen by the episode's selector) is removed
    /// and never serviced. A point event: the duration is ignored.
    RequestDrop,
}

impl FaultKind {
    /// All fault classes, in timeline-index order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::NackStorm,
        FaultKind::BankStall,
        FaultKind::RefreshPressure,
        FaultKind::RequestDrop,
    ];

    /// Stable lowercase name (used in figure output and manifests).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::NackStorm => "nack_storm",
            FaultKind::BankStall => "bank_stall",
            FaultKind::RefreshPressure => "refresh_pressure",
            FaultKind::RequestDrop => "request_drop",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::NackStorm => 0,
            FaultKind::BankStall => 1,
            FaultKind::RefreshPressure => 2,
            FaultKind::RequestDrop => 3,
        }
    }
}

/// A half-open cycle window `[start, end)` a fault process runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First cycle of the window.
    pub start: u64,
    /// One past the last cycle of the window.
    pub end: u64,
}

impl FaultWindow {
    /// Creates a window over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "fault window [{start}, {end}) is empty");
        FaultWindow { start, end }
    }

    /// Window length in cycles.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Always false: empty windows are rejected at construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// One stochastic fault process: a kind, a window, an episode-start rate,
/// and an episode duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// When the process is live.
    pub window: FaultWindow,
    /// Expected episode starts per cycle of gap (geometric inter-arrival
    /// sampling). Must lie in `(0, 1]`.
    pub rate: f64,
    /// Cycles each episode lasts (clamped to at least 1, truncated at the
    /// window end). Ignored for [`FaultKind::RequestDrop`], which is a
    /// point event.
    pub duration: u64,
}

/// A seeded, declarative fault schedule: zero or more [`FaultSpec`]s
/// compiled by [`FaultInjector::new`].
///
/// # Example
///
/// ```
/// use fqms_sim::fault::{FaultInjector, FaultKind, FaultPlan, FaultWindow};
///
/// let plan = FaultPlan::new(7).with(FaultKind::NackStorm, FaultWindow::new(100, 5_000), 0.01, 40);
/// let mut inj = FaultInjector::new(&plan);
/// // Runtime queries draw no randomness: two injectors from the same plan
/// // answer identically.
/// let mut twin = FaultInjector::new(&plan);
/// for cycle in 0..5_000 {
///     assert_eq!(
///         inj.active(FaultKind::NackStorm, cycle).is_some(),
///         twin.active(FaultKind::NackStorm, cycle).is_some(),
///     );
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Master seed for the plan's forked per-spec streams.
    pub seed: u64,
    /// The fault processes to compile.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan: compiles to an injector that never fires and draws
    /// no randomness.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given seed and no specs yet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Appends one fault process (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `(0, 1]` (the geometric sampler's
    /// domain) or the window is empty.
    pub fn with(mut self, kind: FaultKind, window: FaultWindow, rate: f64, duration: u64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "fault rate must be in (0, 1], got {rate}"
        );
        self.specs.push(FaultSpec {
            kind,
            window,
            rate,
            duration,
        });
        self
    }

    /// True if the plan has no fault processes.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The same specs under a salted seed. Multi-channel compositions
    /// salt by channel index so channels draw distinct (but still fully
    /// deterministic) episode timelines.
    pub fn salted(&self, salt: u64) -> FaultPlan {
        FaultPlan {
            seed: self
                .seed
                .wrapping_add(salt.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            specs: self.specs.clone(),
        }
    }
}

/// One compiled fault occurrence: active over `[start, end)` with a
/// pre-drawn `selector` the consumer uses for victim choice (which bank
/// to stall, which queued request to drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// First active cycle.
    pub start: u64,
    /// One past the last active cycle.
    pub end: u64,
    /// Pre-drawn uniform selector for deterministic victim choice.
    pub selector: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Cursor {
    /// Index of the first episode whose `end` is still in the future.
    at: usize,
    /// True once the current episode's activation edge has been reported.
    entered: bool,
}

/// A [`FaultPlan`] compiled to per-kind episode timelines with monotonic
/// query cursors.
///
/// All queries take a *non-decreasing* `now` (per kind); the cursor only
/// moves forward. [`FaultInjector::next_boundary`] is read-only and safe
/// to call from scheduling-bound code (`next_event_cycle`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    timelines: [Vec<Episode>; 4],
    cursors: [Cursor; 4],
    injected: [u64; 4],
}

impl FaultInjector {
    /// Compiles `plan` into sorted per-kind timelines. Spec `i` draws from
    /// `SimRng::new(plan.seed).fork(i)`: episode gaps are geometric in the
    /// spec's rate, and each episode pre-draws its selector. Episodes of
    /// one spec never overlap; specs of the same kind are merged and
    /// sorted by start cycle.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut timelines: [Vec<Episode>; 4] = Default::default();
        let mut base = SimRng::new(plan.seed);
        for (i, spec) in plan.specs.iter().enumerate() {
            let mut rng = base.fork(i as u64);
            let duration = spec.duration.max(1);
            let mut cycle = spec.window.start;
            loop {
                let gap = rng.geometric(spec.rate).saturating_add(1);
                cycle = cycle.saturating_add(gap);
                if cycle >= spec.window.end {
                    break;
                }
                let end = cycle.saturating_add(duration).min(spec.window.end);
                timelines[spec.kind.index()].push(Episode {
                    start: cycle,
                    end,
                    selector: rng.next_u64(),
                });
                cycle = end;
            }
        }
        for timeline in &mut timelines {
            timeline.sort_by_key(|e| (e.start, e.end, e.selector));
        }
        FaultInjector {
            timelines,
            cursors: [Cursor::default(); 4],
            injected: [0; 4],
        }
    }

    /// True if no episode of any kind was compiled.
    pub fn is_empty(&self) -> bool {
        self.timelines.iter().all(Vec::is_empty)
    }

    /// Total episodes compiled for `kind` (the plan's whole horizon).
    pub fn scheduled(&self, kind: FaultKind) -> usize {
        self.timelines[kind.index()].len()
    }

    /// Episodes of `kind` whose activation edge has been observed so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Advances the kind's cursor past episodes that ended at or before
    /// `now`.
    fn advance(&mut self, kind: FaultKind, now: u64) {
        let k = kind.index();
        let timeline = &self.timelines[k];
        let cursor = &mut self.cursors[k];
        while cursor.at < timeline.len() && timeline[cursor.at].end <= now {
            cursor.at += 1;
            cursor.entered = false;
        }
    }

    /// Level query: the episode of `kind` active at `now`, if any. `now`
    /// must be non-decreasing across calls for the same kind.
    pub fn active(&mut self, kind: FaultKind, now: u64) -> Option<Episode> {
        self.advance(kind, now);
        let k = kind.index();
        match self.timelines[k].get(self.cursors[k].at) {
            Some(e) if e.start <= now => Some(*e),
            _ => None,
        }
    }

    /// Edge query: like [`FaultInjector::active`], but reports each
    /// episode exactly once (on the first query at or after its start)
    /// and counts it as injected.
    pub fn activated(&mut self, kind: FaultKind, now: u64) -> Option<Episode> {
        let episode = self.active(kind, now)?;
        let cursor = &mut self.cursors[kind.index()];
        if cursor.entered {
            return None;
        }
        cursor.entered = true;
        self.injected[kind.index()] += 1;
        Some(episode)
    }

    /// Drains every not-yet-consumed episode of `kind` with `start <=
    /// now` into `out` (selectors only), consuming and counting them.
    /// The point-event query for [`FaultKind::RequestDrop`].
    pub fn take_due(&mut self, kind: FaultKind, now: u64, out: &mut Vec<u64>) {
        let k = kind.index();
        let timeline = &self.timelines[k];
        let cursor = &mut self.cursors[k];
        while cursor.at < timeline.len() && timeline[cursor.at].start <= now {
            out.push(timeline[cursor.at].selector);
            cursor.at += 1;
            cursor.entered = false;
            self.injected[k] += 1;
        }
    }

    /// The earliest episode edge (start or end, any kind) strictly after
    /// `now`, from the current cursor positions. Read-only: safe to call
    /// from `next_event_cycle`-style planning code. Returns `None` when
    /// no future edge exists.
    pub fn next_boundary(&self, now: u64) -> Option<u64> {
        let mut earliest: Option<u64> = None;
        let mut consider = |edge: u64| {
            if edge > now && earliest.is_none_or(|e| edge < e) {
                earliest = Some(edge);
            }
        };
        for (k, timeline) in self.timelines.iter().enumerate() {
            for episode in &timeline[self.cursors[k].at.min(timeline.len())..] {
                if episode.start > now {
                    consider(episode.start);
                    break;
                }
                if episode.end > now {
                    consider(episode.start.max(now)); // already active
                    consider(episode.end);
                    break;
                }
                // Stale entry (ended, cursor not yet advanced): keep
                // scanning for the first future edge of this kind.
            }
        }
        earliest
    }
}

/// The injector's serialized state is only its *position*: per-kind
/// cursors and injected counters. Timelines are a pure function of
/// `(plan, seed)` and are rebuilt by compiling the same plan before
/// restore — the determinism argument for fault-injection resume.
impl Snapshot for FaultInjector {
    fn save(&self, w: &mut SectionWriter) {
        for k in 0..4 {
            w.put_usize(self.cursors[k].at);
            w.put_bool(self.cursors[k].entered);
            w.put_u64(self.injected[k]);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let mut cursors = [Cursor::default(); 4];
        let mut injected = [0u64; 4];
        for k in 0..4 {
            cursors[k].at = r.get_usize()?;
            cursors[k].entered = r.get_bool()?;
            injected[k] = r.get_u64()?;
            if cursors[k].at > self.timelines[k].len() {
                return Err(r.malformed(format!(
                    "fault cursor {} past its {}-episode timeline (was the plan changed?)",
                    cursors[k].at,
                    self.timelines[k].len()
                )));
            }
        }
        self.cursors = cursors;
        self.injected = injected;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(seed).with(FaultKind::NackStorm, FaultWindow::new(10, 2_000), 0.02, 25)
    }

    #[test]
    fn empty_plan_compiles_to_inert_injector() {
        let mut inj = FaultInjector::new(&FaultPlan::none());
        assert!(inj.is_empty());
        for kind in FaultKind::ALL {
            assert!(inj.active(kind, 1_000).is_none());
            assert_eq!(inj.injected(kind), 0);
        }
        assert_eq!(inj.next_boundary(0), None);
    }

    #[test]
    fn compilation_is_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(&storm_plan(3));
        let b = FaultInjector::new(&storm_plan(3));
        let c = FaultInjector::new(&storm_plan(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.scheduled(FaultKind::NackStorm) > 5);
    }

    #[test]
    fn episodes_sit_inside_their_window_and_never_overlap() {
        let plan = storm_plan(11);
        let inj = FaultInjector::new(&plan);
        let episodes = &inj.timelines[FaultKind::NackStorm.index()];
        let w = plan.specs[0].window;
        for pair in episodes.windows(2) {
            assert!(pair[0].end <= pair[1].start, "episodes overlap: {pair:?}");
        }
        for e in episodes {
            assert!(e.start > w.start && e.end <= w.end, "escaped window: {e:?}");
            assert!(e.end - e.start <= 25);
        }
    }

    #[test]
    fn level_and_edge_queries_agree() {
        let mut inj = FaultInjector::new(&storm_plan(5));
        let twin = FaultInjector::new(&storm_plan(5));
        let episodes = twin.timelines[FaultKind::NackStorm.index()].clone();
        let mut edges = 0u64;
        for now in 0..2_100 {
            let expected = episodes.iter().find(|e| e.start <= now && now < e.end);
            let level = inj.active(FaultKind::NackStorm, now);
            assert_eq!(level, expected.copied(), "cycle {now}");
            if inj.activated(FaultKind::NackStorm, now).is_some() {
                edges += 1;
            }
        }
        assert_eq!(edges, episodes.len() as u64);
        assert_eq!(inj.injected(FaultKind::NackStorm), edges);
    }

    #[test]
    fn take_due_consumes_point_events_once() {
        let plan = FaultPlan::new(9).with(
            FaultKind::RequestDrop,
            FaultWindow::new(0, 10_000),
            0.005,
            1,
        );
        let mut inj = FaultInjector::new(&plan);
        let total = inj.scheduled(FaultKind::RequestDrop);
        assert!(total > 10);
        let mut seen = Vec::new();
        for now in (0..12_000).step_by(37) {
            inj.take_due(FaultKind::RequestDrop, now, &mut seen);
        }
        assert_eq!(seen.len(), total);
        let mut again = Vec::new();
        inj.take_due(FaultKind::RequestDrop, 20_000, &mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn next_boundary_names_every_edge() {
        let plan = storm_plan(21);
        let mut inj = FaultInjector::new(&plan);
        let episodes = inj.timelines[FaultKind::NackStorm.index()].clone();
        let mut expected: Vec<u64> = episodes.iter().flat_map(|e| [e.start, e.end]).collect();
        expected.sort_unstable();
        expected.dedup();
        // Walk boundary-to-boundary: every hop lands exactly on the next
        // compiled edge (keeping the level cursor in step, as the
        // controller does).
        let mut now = 0;
        let mut seen = Vec::new();
        while let Some(edge) = inj.next_boundary(now) {
            seen.push(edge);
            now = edge;
            let _ = inj.active(FaultKind::NackStorm, now);
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn salted_plans_differ_but_stay_deterministic() {
        let plan = storm_plan(2);
        let a0 = FaultInjector::new(&plan.salted(0));
        let a0_again = FaultInjector::new(&plan.salted(0));
        let a1 = FaultInjector::new(&plan.salted(1));
        assert_eq!(a0, a0_again);
        assert_ne!(a0, a1);
        assert_eq!(plan.salted(0).specs, plan.specs);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let _ = FaultPlan::new(0).with(FaultKind::BankStall, FaultWindow::new(0, 10), 0.0, 1);
    }

    #[test]
    #[should_panic]
    fn empty_window_rejected() {
        let _ = FaultWindow::new(5, 5);
    }
}
