//! Statistics primitives used by the simulator and the evaluation harness.
//!
//! The paper's metrics are: IPC, average memory read latency, data-bus
//! utilization, bank utilization, harmonic mean of normalized IPCs (the
//! aggregate performance metric of Luo et al.), and the variance of
//! normalized target bus utilization (Figure 9). This module supplies the
//! counters and summary math those metrics are built from.

use crate::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};
use std::fmt;
use std::iter::FromIterator;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use fqms_sim::stats::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Returns the count as `f64`.
    #[inline]
    pub fn as_f64(&self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A busy/total utilization ratio, e.g. data-bus busy cycles over elapsed
/// cycles.
///
/// # Example
///
/// ```
/// use fqms_sim::stats::Ratio;
///
/// let mut r = Ratio::new();
/// r.add_busy(30);
/// r.add_total(100);
/// assert!((r.value() - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Ratio {
    busy: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio (0/0, which reads as 0.0).
    pub const fn new() -> Self {
        Ratio { busy: 0, total: 0 }
    }

    /// Adds busy cycles to the numerator.
    #[inline]
    pub fn add_busy(&mut self, n: u64) {
        self.busy += n;
    }

    /// Adds elapsed cycles to the denominator.
    #[inline]
    pub fn add_total(&mut self, n: u64) {
        self.total += n;
    }

    /// Numerator (busy cycles).
    #[inline]
    pub fn busy(&self) -> u64 {
        self.busy
    }

    /// Denominator (total cycles).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The utilization in `[0, 1]`; 0.0 when no cycles have elapsed.
    #[inline]
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.busy as f64 / self.total as f64
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ({}/{})", self.value(), self.busy, self.total)
    }
}

/// Running summary statistics over a stream of `f64` samples: count, mean,
/// min, max, and variance (via Welford's online algorithm).
///
/// # Example
///
/// ```
/// use fqms_sim::stats::Summary;
///
/// let s: Summary = [2.0_f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
///     .iter().copied().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// A derived `Default` would zero the min/max sentinels (they start at
// ±infinity), silently pinning `min()` at 0.0 — delegate to `new`.
impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by N); 0.0 for fewer than 2 samples.
    ///
    /// Figure 9 of the paper reports the variance of normalized bus
    /// utilization across all threads of all workloads; the population form
    /// matches "variance of this finite set of measurements".
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by N-1); 0.0 for fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Minimum sample; 0.0 for an empty summary.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample; 0.0 for an empty summary.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one (Chan et al.'s parallel
    /// variance combination). Merging is deterministic for a fixed merge
    /// order; the sharded engine always merges per-channel summaries in
    /// channel-index order, so serial and parallel runs produce
    /// bit-identical merged summaries.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * (other.count as f64 / n as f64);
        self.m2 += other.m2 + delta * delta * (self.count as f64 * other.count as f64 / n as f64);
        self.count = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} var={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.population_variance(),
            self.min(),
            self.max()
        )
    }
}

/// Harmonic mean of a set of values, the aggregate multiprogram performance
/// metric the paper adopts from Luo et al. \[13\].
///
/// Returns 0.0 for an empty slice or if any value is non-positive (a thread
/// with zero normalized IPC makes the harmonic mean degenerate; callers
/// should treat that as a broken run).
///
/// # Example
///
/// ```
/// use fqms_sim::stats::harmonic_mean;
///
/// let hm = harmonic_mean(&[1.0, 1.0]);
/// assert!((hm - 1.0).abs() < 1e-12);
/// let hm = harmonic_mean(&[0.5, 1.0]);
/// assert!((hm - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    let recip_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    values.len() as f64 / recip_sum
}

/// A fixed-width-bucket histogram over `u64` samples, used for latency
/// distributions.
///
/// # Example
///
/// ```
/// use fqms_sim::stats::Histogram;
///
/// let mut h = Histogram::new(10, 8); // 8 buckets, 10 units wide
/// h.record(5);
/// h.record(25);
/// h.record(1_000); // overflows into the last bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(2), 1);
/// assert_eq!(h.bucket_count(7), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `num_buckets` buckets each `bucket_width`
    /// wide; samples beyond the range land in the final bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `num_buckets` is zero.
    pub fn new(bucket_width: u64, num_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket_width must be positive");
        assert!(num_buckets > 0, "num_buckets must be positive");
        Histogram {
            bucket_width,
            buckets: vec![0; num_buckets],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        let idx = ((x / self.bucket_width) as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += x;
        self.max = self.max.max(x);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples; 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of samples in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Approximate p-th percentile (`0.0 <= p <= 1.0`) using the upper edge
    /// of the containing bucket; 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return (i as u64 + 1) * self.bucket_width;
            }
        }
        (self.buckets.len() as u64) * self.bucket_width
    }
}

/// A logarithmic (power-of-two bucket) histogram over `u64` samples.
///
/// Latency distributions span several orders of magnitude (a row-hit CAS
/// is ~9 cycles; a request blocked behind refresh or a deep queue can take
/// thousands), so the observability layer's per-thread latency sinks use
/// log2 buckets: bucket 0 holds the sample `0`, bucket `i >= 1` holds
/// samples in `[2^(i-1), 2^i)`. All fields are integers, so merging and
/// comparison are exact.
///
/// # Example
///
/// ```
/// use fqms_sim::stats::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(1);
/// h.record(9);
/// h.record(15);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(1), 1); // [1, 2)
/// assert_eq!(h.bucket_count(4), 2); // [8, 16)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    /// `buckets[0]` counts zeros; `buckets[i]` counts `[2^(i-1), 2^i)`.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

/// 0 plus one bucket per possible bit width of a `u64` sample.
const LOG2_BUCKETS: usize = 65;

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: vec![0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket a sample lands in: its bit width (0 for the sample 0).
    #[inline]
    pub fn bucket_of(x: u64) -> usize {
        (u64::BITS - x.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, x: u64) {
        self.buckets[Self::bucket_of(x)] += 1;
        self.count += 1;
        self.sum += x;
        self.max = self.max.max(x);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples; 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of samples in bucket `idx` (see the type docs for ranges).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// All bucket counts, index 0 to 64.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate p-th percentile (`0.0 <= p <= 1.0`): the upper edge
    /// `2^i` of the bucket containing the p-th sample; 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }

    /// Adds another histogram's samples to this one. Exact (all-integer),
    /// so merge order does not matter.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Snapshot for Counter {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.0);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.0 = r.get_u64()?;
        Ok(())
    }
}

impl Snapshot for Ratio {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.busy);
        w.put_u64(self.total);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.busy = r.get_u64()?;
        self.total = r.get_u64()?;
        Ok(())
    }
}

/// Floating-point fields round-trip via their IEEE-754 bit patterns, so a
/// restored summary is bit-identical to the saved one (including the
/// ±infinity min/max sentinels of an empty summary).
impl Snapshot for Summary {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.count);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.count = r.get_u64()?;
        self.mean = r.get_f64()?;
        self.m2 = r.get_f64()?;
        self.min = r.get_f64()?;
        self.max = r.get_f64()?;
        Ok(())
    }
}

/// Bucket width and bucket count are construction-time configuration: the
/// restore target must already have matching shape, and a mismatch is a
/// [`SnapshotError::Malformed`] rather than a silent resize.
impl Snapshot for Histogram {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.bucket_width);
        w.put_seq_len(self.buckets.len());
        for &b in &self.buckets {
            w.put_u64(b);
        }
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.max);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let width = r.get_u64()?;
        if width != self.bucket_width {
            return Err(r.malformed(format!(
                "histogram bucket width {width} != {}",
                self.bucket_width
            )));
        }
        let n = r.seq_len()?;
        if n != self.buckets.len() {
            return Err(r.malformed(format!(
                "histogram has {n} buckets, target has {}",
                self.buckets.len()
            )));
        }
        for b in &mut self.buckets {
            *b = r.get_u64()?;
        }
        self.count = r.get_u64()?;
        self.sum = r.get_u64()?;
        self.max = r.get_u64()?;
        Ok(())
    }
}

impl Snapshot for Log2Histogram {
    fn save(&self, w: &mut SectionWriter) {
        w.put_seq_len(self.buckets.len());
        for &b in &self.buckets {
            w.put_u64(b);
        }
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.max);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let n = r.seq_len()?;
        if n != self.buckets.len() {
            return Err(r.malformed(format!(
                "log2 histogram has {n} buckets, expected {}",
                self.buckets.len()
            )));
        }
        for b in &mut self.buckets {
            *b = r.get_u64()?;
        }
        self.count = r.get_u64()?;
        self.sum = r.get_u64()?;
        self.max = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.as_f64(), 10.0);
    }

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(Ratio::new().value(), 0.0);
    }

    #[test]
    fn ratio_accumulates() {
        let mut r = Ratio::new();
        r.add_busy(25);
        r.add_total(50);
        r.add_busy(0);
        r.add_total(50);
        assert!((r.value() - 0.25).abs() < 1e-12);
        assert_eq!(r.busy(), 25);
        assert_eq!(r.total(), 100);
    }

    #[test]
    fn summary_single_sample() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn summary_known_variance() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0].iter().copied().collect();
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.population_variance() - 1.25).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_extend() {
        let mut s = Summary::new();
        s.extend([1.0, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn harmonic_mean_of_equal_values() {
        assert!((harmonic_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_penalizes_low_values() {
        let hm = harmonic_mean(&[0.1, 1.9]);
        let am = (0.1 + 1.9) / 2.0;
        assert!(hm < am);
        assert!((hm - 0.19).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_degenerate_inputs() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(100, 4);
        h.record(0);
        h.record(99);
        h.record(100);
        h.record(399);
        h.record(5000);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(3), 2);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn histogram_mean_and_percentile() {
        let mut h = Histogram::new(10, 100);
        for x in [10u64, 20, 30, 40] {
            h.record(x);
        }
        assert!((h.mean() - 25.0).abs() < 1e-12);
        // p50 over {10,20,30,40}: second sample is in bucket 2 -> edge 30.
        assert_eq!(h.percentile(0.5), 30);
        assert_eq!(h.percentile(1.0), 50);
    }

    #[test]
    #[should_panic]
    fn histogram_zero_width_panics() {
        let _ = Histogram::new(0, 4);
    }

    #[test]
    fn summary_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let whole: Summary = xs.iter().copied().collect();
        let mut merged: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        merged.merge(&right);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].iter().copied().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn log2_bucketing() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn log2_histogram_counts_and_moments() {
        let mut h = Log2Histogram::new();
        for x in [0u64, 1, 5, 9, 300] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 315);
        assert_eq!(h.max(), 300);
        assert!((h.mean() - 63.0).abs() < 1e-12);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(3), 1); // 5 in [4, 8)
        assert_eq!(h.bucket_count(4), 1); // 9 in [8, 16)
        assert_eq!(h.bucket_count(9), 1); // 300 in [256, 512)
    }

    #[test]
    fn log2_percentile_reports_bucket_edges() {
        let mut h = Log2Histogram::new();
        for x in [10u64, 20, 30, 1000] {
            h.record(x);
        }
        // 10 -> bucket 4 (edge 16); 20, 30 -> bucket 5 (edge 32).
        assert_eq!(h.percentile(0.25), 16);
        assert_eq!(h.percentile(0.75), 32);
        assert_eq!(h.percentile(1.0), 1024);
        assert_eq!(Log2Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn log2_merge_is_exact() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut whole = Log2Histogram::new();
        for (i, x) in [3u64, 0, 77, 12, 4096, 9].iter().enumerate() {
            whole.record(*x);
            if i % 2 == 0 {
                a.record(*x);
            } else {
                b.record(*x);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
