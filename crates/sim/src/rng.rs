//! Deterministic pseudo-random number generation.
//!
//! The simulator must be exactly reproducible: the same configuration and
//! seed must produce bit-identical results on every run and platform. To
//! guarantee that independently of external crates' version churn, the
//! workload generators use this small, self-contained generator — a
//! SplitMix64-seeded xoshiro256** — rather than `rand`'s default engines.
//!
//! The generator is *not* cryptographically secure; it only needs good
//! statistical behaviour for synthetic address streams.

/// A deterministic xoshiro256** generator seeded via SplitMix64.
///
/// # Example
///
/// ```
/// use fqms_sim::rng::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of xoshiro state are expanded from the seed with
    /// SplitMix64, which guarantees a non-zero state for every seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// thread its own stream so per-thread behaviour does not depend on the
    /// interleaving of other threads' draws.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let mixed = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        SimRng::new(mixed)
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
        let result = (*s1).wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's multiply-shift rejection method for unbiased bounded draws.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits for a dyadic uniform in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Draws from a geometric distribution with success probability `p`,
    /// returning the number of failures before the first success (>= 0).
    /// Used for burst-length and gap sampling in workload generation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::new(99);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::new(3);
        for bound in [1u64, 2, 3, 7, 8, 1000] {
            for _ in 0..500 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        SimRng::new(0).next_below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SimRng::new(13);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(17);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = SimRng::new(23);
        let p = 0.25;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = SimRng::new(29);
        assert_eq!(rng.geometric(1.0), 0);
    }
}
