//! Deterministic pseudo-random number generation.
//!
//! The simulator must be exactly reproducible: the same configuration and
//! seed must produce bit-identical results on every run and platform. To
//! guarantee that independently of external crates' version churn, the
//! workload generators use this small, self-contained generator — a
//! SplitMix64-seeded xoshiro256** — rather than `rand`'s default engines.
//!
//! The generator is *not* cryptographically secure; it only needs good
//! statistical behaviour for synthetic address streams.

use crate::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// A deterministic xoshiro256** generator seeded via SplitMix64.
///
/// # Example
///
/// ```
/// use fqms_sim::rng::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of xoshiro state are expanded from the seed with
    /// SplitMix64, which guarantees a non-zero state for every seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// thread its own stream so per-thread behaviour does not depend on the
    /// interleaving of other threads' draws.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let mixed = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        SimRng::new(mixed)
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
        let result = (*s1).wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's multiply-shift rejection method for unbiased bounded draws.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits for a dyadic uniform in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Draws from a geometric distribution with success probability `p`,
    /// returning the number of failures before the first success (>= 0).
    /// Used for burst-length and gap sampling in workload generation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }
}

impl Snapshot for SimRng {
    fn save(&self, w: &mut SectionWriter) {
        for word in self.state {
            w.put_u64(word);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        if state == [0; 4] {
            // xoshiro256** is degenerate at the all-zero state; SplitMix64
            // seeding can never produce it, so a snapshot carrying it is
            // corrupt.
            return Err(r.malformed("all-zero xoshiro256** state"));
        }
        self.state = state;
        Ok(())
    }
}

/// A deterministic generate–check–shrink harness for property-style tests.
///
/// This is the in-tree replacement for the external `proptest` crate the
/// workspace deliberately does not depend on (hermetic builds): cases are
/// generated from [`SimRng`] streams under a fixed seed, failing cases are
/// greedily shrunk through a caller-supplied candidate function, and the
/// minimal failure is reported with everything needed to reproduce it.
///
/// Case counts scale with the environment:
/// * `FQMS_CASES=<n>` overrides the number of cases per property;
/// * building with the workspace's `proptest` feature multiplies the
///   default by 8 (the "generative coverage" configuration — still fully
///   deterministic, just wider).
///
/// # Example
///
/// ```
/// use fqms_sim::rng::{CaseRunner, SimRng};
///
/// // Property: the sum of n ones is n (trivially true).
/// CaseRunner::new("sum-of-ones").run(
///     |rng: &mut SimRng| rng.next_below(100),
///     |&n| (0..n).rev().take(4).collect(), // shrink toward 0
///     |&n| {
///         let sum: u64 = (0..n).map(|_| 1).sum();
///         if sum == n { Ok(()) } else { Err(format!("sum was {sum}")) }
///     },
/// );
/// ```
#[derive(Debug, Clone)]
pub struct CaseRunner {
    name: String,
    seed: u64,
    cases: u64,
    max_shrink_steps: u64,
}

impl CaseRunner {
    /// Default cases per property; the `proptest` feature widens it 8x.
    fn default_cases() -> u64 {
        let base = if cfg!(feature = "proptest") { 128 } else { 16 };
        match std::env::var("FQMS_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) if n > 0 => n,
            _ => base,
        }
    }

    /// Creates a runner for the named property with default settings
    /// (seed 2006; case count 16, widened 8x by the `proptest` feature
    /// and overridable via `FQMS_CASES`).
    pub fn new(name: &str) -> Self {
        CaseRunner {
            name: name.to_string(),
            seed: 2006,
            cases: Self::default_cases(),
            max_shrink_steps: 200,
        }
    }

    /// Overrides the number of generated cases.
    pub fn cases(mut self, cases: u64) -> Self {
        self.cases = cases.max(1);
        self
    }

    /// Overrides the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates `cases` cases, checks the property on each, and panics
    /// with a shrunk minimal counterexample on the first failure.
    ///
    /// `generate` draws a case from a per-case RNG stream; `shrink`
    /// proposes strictly smaller candidate cases (may be empty); `check`
    /// returns `Err(reason)` when the property is violated. Shrinking is a
    /// greedy descent: the first failing candidate at each step becomes
    /// the new case, bounded by an internal step limit.
    ///
    /// # Panics
    ///
    /// Panics (failing the test) if any case violates the property.
    pub fn run<C, G, S, P>(&self, generate: G, shrink: S, check: P)
    where
        C: std::fmt::Debug,
        G: Fn(&mut SimRng) -> C,
        S: Fn(&C) -> Vec<C>,
        P: Fn(&C) -> Result<(), String>,
    {
        let mut root = SimRng::new(self.seed);
        for case_idx in 0..self.cases {
            let mut rng = root.fork(case_idx);
            let case = generate(&mut rng);
            let Err(first_error) = check(&case) else {
                continue;
            };
            // Greedy shrink descent to a minimal failing case.
            let mut minimal = case;
            let mut error = first_error.clone();
            let mut steps = 0u64;
            'descend: while steps < self.max_shrink_steps {
                for candidate in shrink(&minimal) {
                    steps += 1;
                    if let Err(e) = check(&candidate) {
                        minimal = candidate;
                        error = e;
                        continue 'descend;
                    }
                    if steps >= self.max_shrink_steps {
                        break;
                    }
                }
                break; // no candidate fails: minimal reached
            }
            panic!(
                "property '{}' failed (case {case_idx} of {}, seed {}):\n  \
                 minimal case: {minimal:?}\n  error: {error}\n  first error: {first_error}\n  \
                 reproduce with FQMS_CASES={} and the same seed",
                self.name,
                self.cases,
                self.seed,
                case_idx + 1,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::new(99);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::new(3);
        for bound in [1u64, 2, 3, 7, 8, 1000] {
            for _ in 0..500 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        SimRng::new(0).next_below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SimRng::new(13);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(17);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = SimRng::new(23);
        let p = 0.25;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = SimRng::new(29);
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn case_runner_passes_true_property() {
        CaseRunner::new("always-true").cases(32).run(
            |rng| rng.next_below(1000),
            |&n| vec![n / 2],
            |_| Ok(()),
        );
    }

    #[test]
    fn case_runner_shrinks_to_minimal_counterexample() {
        // Property "n < 50" fails for n >= 50; shrinking by decrement must
        // land exactly on the boundary case 50.
        let r = std::panic::catch_unwind(|| {
            CaseRunner::new("boundary").cases(64).run(
                |rng| 200 + rng.next_below(800),
                |&n: &u64| if n > 0 { vec![n / 2, n - 1] } else { vec![] },
                |&n| {
                    if n < 50 {
                        Ok(())
                    } else {
                        Err(format!("{n} >= 50"))
                    }
                },
            );
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal case: 50"), "got: {msg}");
        assert!(msg.contains("property 'boundary'"), "got: {msg}");
    }

    #[test]
    fn case_runner_is_deterministic() {
        // Two runs of the same failing property report the same minimal
        // case (the generator streams are seed-derived).
        let capture = || {
            let r = std::panic::catch_unwind(|| {
                CaseRunner::new("det").cases(16).run(
                    |rng| rng.next_below(1 << 20),
                    |&n: &u64| vec![n / 2, n.saturating_sub(1)],
                    |&n| {
                        if n % 7 != 3 {
                            Ok(())
                        } else {
                            Err("hit".into())
                        }
                    },
                );
            });
            *r.unwrap_err().downcast::<String>().unwrap()
        };
        assert_eq!(capture(), capture());
    }

    #[test]
    fn case_runner_shrink_steps_are_bounded() {
        // An endless shrink chain (always another failing candidate) must
        // terminate via the internal step bound.
        let r = std::panic::catch_unwind(|| {
            CaseRunner::new("endless").cases(1).run(
                |rng| rng.next_below(10),
                |&n: &u64| vec![n + 1], // "shrink" never converges
                |_| Err("always fails".into()),
            );
        });
        assert!(r.is_err());
    }
}
