//! Epoch-barrier parallel execution of independent simulation shards.
//!
//! A [`Shard`] is a self-contained piece of simulation state (for FQMS: one
//! DDR2 channel with its bank schedulers, VTMS bookkeeping, and command
//! log) that can be advanced over a half-open window of cycles without
//! reference to any other shard. Because shards share nothing, advancing
//! them on worker threads in epochs separated by a barrier produces *the
//! same final state as advancing them one after another* — parallel runs
//! are bit-identical to serial runs by construction, whatever the thread
//! count or epoch length.
//!
//! [`run_serial`] and [`run_parallel`] drive the same epoch loop; both
//! leave the shards in place (in their original order) so the caller can
//! merge per-shard results deterministically afterwards.
//!
//! # Example
//!
//! ```
//! use fqms_sim::parallel::{run_parallel, run_serial, Shard};
//!
//! struct Counter { ticks: u64, budget: u64 }
//! impl Shard for Counter {
//!     fn run_epoch(&mut self, start: u64, end: u64) -> bool {
//!         for _ in start..end {
//!             if self.ticks < self.budget { self.ticks += 1; }
//!         }
//!         self.ticks < self.budget
//!     }
//! }
//!
//! let mut a: Vec<Counter> =
//!     (1..=4).map(|i| Counter { ticks: 0, budget: i * 10 }).collect();
//! let mut b: Vec<Counter> =
//!     (1..=4).map(|i| Counter { ticks: 0, budget: i * 10 }).collect();
//! run_serial(&mut a, 1_000, 16);
//! run_parallel(&mut b, 1_000, 16, 3);
//! for (x, y) in a.iter().zip(&b) {
//!     assert_eq!(x.ticks, y.ticks);
//! }
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// A self-contained simulation partition that can be advanced over a
/// window of cycles independently of every other shard.
pub trait Shard: Send {
    /// Advances the shard over the half-open cycle window `(start, end]`
    /// (i.e. processes every cycle `c` with `start < c <= end`).
    ///
    /// Returns `true` if the shard may still have work to do after `end`.
    /// Once a shard returns `false` it is considered drained and will not
    /// be stepped again for the remainder of the run; implementations must
    /// only return `false` when no future epoch could produce more work.
    fn run_epoch(&mut self, start: u64, end: u64) -> bool;
}

fn check_args(horizon: u64, epoch_cycles: u64) {
    assert!(epoch_cycles > 0, "epoch length must be positive");
    assert!(horizon > 0, "horizon must be positive");
}

/// Advances every shard to `horizon` cycles (or until all shards drain) on
/// the calling thread, one epoch at a time.
///
/// Returns the cycle the run actually reached (a multiple of
/// `epoch_cycles`, capped at `horizon`).
///
/// # Panics
///
/// Panics if `horizon` or `epoch_cycles` is zero.
pub fn run_serial<S: Shard>(shards: &mut [S], horizon: u64, epoch_cycles: u64) -> u64 {
    check_args(horizon, epoch_cycles);
    let mut done = vec![false; shards.len()];
    let mut remaining = shards.len();
    let mut start = 0u64;
    while start < horizon && remaining > 0 {
        let end = horizon.min(start + epoch_cycles);
        for (shard, d) in shards.iter_mut().zip(done.iter_mut()) {
            if !*d && !shard.run_epoch(start, end) {
                *d = true;
                remaining -= 1;
            }
        }
        start = end;
    }
    start
}

/// Advances every shard to `horizon` cycles (or until all shards drain)
/// using `num_threads` worker threads stepping in lockstep epochs.
///
/// Shards are distributed round-robin across workers and every worker
/// synchronises on a barrier at each epoch boundary, so no shard ever runs
/// more than one epoch ahead of another (bounding memory skew) and the
/// run exits early — consistently across workers — once every shard has
/// drained. Since shards are disjoint, the final shard states are
/// bit-identical to [`run_serial`] on the same inputs.
///
/// Returns the cycle the run actually reached.
///
/// # Panics
///
/// Panics if `horizon`, `epoch_cycles`, or `num_threads` is zero, or if a
/// worker thread panics (a shard's own panic is propagated).
pub fn run_parallel<S: Shard>(
    shards: &mut [S],
    horizon: u64,
    epoch_cycles: u64,
    num_threads: usize,
) -> u64 {
    check_args(horizon, epoch_cycles);
    assert!(num_threads > 0, "need at least one worker thread");
    if shards.is_empty() {
        return horizon;
    }
    let workers = num_threads.min(shards.len());
    if workers == 1 {
        return run_serial(shards, horizon, epoch_cycles);
    }

    // Round-robin deal so consecutive (often similarly loaded) shards
    // spread across workers. Each worker gets disjoint `&mut` access.
    let mut lanes: Vec<Vec<&mut S>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, shard) in shards.iter_mut().enumerate() {
        lanes[i % workers].push(shard);
    }

    let barrier = Barrier::new(workers);
    let remaining = AtomicUsize::new(lanes.iter().map(Vec::len).sum());
    let reached = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                let barrier = &barrier;
                let remaining = &remaining;
                scope.spawn(move || {
                    let mut lane = lane;
                    let mut done = vec![false; lane.len()];
                    let mut start = 0u64;
                    while start < horizon {
                        let end = horizon.min(start + epoch_cycles);
                        for (shard, d) in lane.iter_mut().zip(done.iter_mut()) {
                            if !*d && !shard.run_epoch(start, end) {
                                *d = true;
                                remaining.fetch_sub(1, Ordering::AcqRel);
                            }
                        }
                        // Two barriers per epoch: all decrements for this
                        // epoch happen before the first, and the next
                        // epoch's decrements happen only after the second,
                        // so between them every worker reads the same
                        // count and makes the same continue/stop decision.
                        barrier.wait();
                        let all_drained = remaining.load(Ordering::Acquire) == 0;
                        barrier.wait();
                        start = end;
                        if all_drained {
                            break;
                        }
                    }
                    start
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .fold(0u64, u64::max)
    });
    reached
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shard that appends the epoch windows it saw and drains after a
    /// fixed number of cycles.
    struct Recorder {
        windows: Vec<(u64, u64)>,
        budget: u64,
        seen: u64,
    }

    impl Recorder {
        fn new(budget: u64) -> Self {
            Recorder {
                windows: Vec::new(),
                budget,
                seen: 0,
            }
        }
    }

    impl Shard for Recorder {
        fn run_epoch(&mut self, start: u64, end: u64) -> bool {
            self.windows.push((start, end));
            self.seen += end - start;
            self.seen < self.budget
        }
    }

    #[test]
    fn serial_and_parallel_states_match() {
        for threads in 1..=6 {
            let mut serial: Vec<Recorder> = (0..7).map(|i| Recorder::new(50 + i * 37)).collect();
            let mut parallel: Vec<Recorder> = (0..7).map(|i| Recorder::new(50 + i * 37)).collect();
            let a = run_serial(&mut serial, 10_000, 64);
            let b = run_parallel(&mut parallel, 10_000, 64, threads);
            assert_eq!(a, b, "{threads} threads: reached different cycles");
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.windows, p.windows, "{threads} threads");
                assert_eq!(s.seen, p.seen, "{threads} threads");
            }
        }
    }

    #[test]
    fn early_exit_when_all_shards_drain() {
        let mut shards: Vec<Recorder> = (0..4).map(|_| Recorder::new(100)).collect();
        let reached = run_parallel(&mut shards, 1_000_000, 32, 2);
        // Budget 100 at epoch 32 drains during the 4th epoch.
        assert_eq!(reached, 128);
        for s in &shards {
            assert_eq!(s.windows.len(), 4);
        }
    }

    #[test]
    fn horizon_is_respected() {
        let mut shards = vec![Recorder::new(u64::MAX)];
        let reached = run_serial(&mut shards, 100, 64);
        assert_eq!(reached, 100);
        assert_eq!(shards[0].windows, vec![(0, 64), (64, 100)]);
    }

    #[test]
    fn drained_shards_are_not_restepped() {
        let mut shards = vec![Recorder::new(10), Recorder::new(1_000)];
        run_parallel(&mut shards, 2_000, 100, 2);
        assert_eq!(shards[0].windows.len(), 1, "drained shard kept stepping");
        assert_eq!(shards[1].windows.len(), 10);
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let mut shards = vec![Recorder::new(100)];
        let reached = run_parallel(&mut shards, 1_000, 64, 8);
        assert_eq!(reached, 128);
    }

    #[test]
    fn empty_shard_list_is_a_noop() {
        let mut shards: Vec<Recorder> = Vec::new();
        assert_eq!(run_parallel(&mut shards, 100, 10, 4), 100);
    }

    #[test]
    #[should_panic]
    fn zero_epoch_rejected() {
        let mut shards = vec![Recorder::new(10)];
        run_serial(&mut shards, 100, 0);
    }
}
