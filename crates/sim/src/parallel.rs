//! Free-running parallel execution of independent simulation shards.
//!
//! A [`Shard`] is a self-contained piece of simulation state (for FQMS: one
//! DDR2 channel with its bank schedulers, VTMS bookkeeping, and command
//! log) that can be advanced over a half-open window of cycles without
//! reference to any other shard. Because shards share nothing, the *final*
//! state of each shard depends only on the sequence of epoch windows it is
//! stepped through — never on when other shards run. The executors below
//! all drive every shard through the identical window sequence
//! `(0, e], (e, 2e], …` that [`run_serial`] uses, so parallel runs are
//! bit-identical to serial runs by construction, whatever the thread
//! count, epoch length, scheduling order, or work-stealing history.
//!
//! Two parallel executors are provided:
//!
//! * [`run_free`] (the default behind [`run_parallel`]) — **free-running**:
//!   each shard advances to its own event horizon with no cross-shard
//!   synchronisation at all. Shards live in a shared claim queue; workers
//!   repeatedly claim a shard, advance it a *quantum* of epochs, and
//!   requeue it, so 16–64 channels load-balance over fewer worker threads
//!   (claiming a shard last advanced by a different worker is a *steal*).
//!   The only sync points are the ones the caller retains: result merge
//!   after the run, and any checkpoint/fault boundary the caller encodes
//!   into `horizon`. Epoch handoff is allocation-free — the claim queue is
//!   built once and tasks are recycled through it.
//! * [`run_lockstep`] — the PR 1 epoch-barrier executor, kept as a
//!   reference implementation: every worker synchronises on a barrier at
//!   each epoch boundary (two waits per epoch). Useful for differential
//!   tests and for measuring what the barriers cost.
//!
//! [`run_serial`], [`run_lockstep`], and [`run_free`] all leave the shards
//! in place (in their original order) so the caller can merge per-shard
//! results deterministically afterwards. Executor activity (worker counts,
//! steals, free-run spans, barrier waits) accumulates into process-wide
//! counters readable via [`exec_counters`].
//!
//! # Example
//!
//! ```
//! use fqms_sim::parallel::{run_parallel, run_serial, Shard};
//!
//! struct Counter { ticks: u64, budget: u64 }
//! impl Shard for Counter {
//!     fn run_epoch(&mut self, start: u64, end: u64) -> bool {
//!         for _ in start..end {
//!             if self.ticks < self.budget { self.ticks += 1; }
//!         }
//!         self.ticks < self.budget
//!     }
//! }
//!
//! let mut a: Vec<Counter> =
//!     (1..=4).map(|i| Counter { ticks: 0, budget: i * 10 }).collect();
//! let mut b: Vec<Counter> =
//!     (1..=4).map(|i| Counter { ticks: 0, budget: i * 10 }).collect();
//! run_serial(&mut a, 1_000, 16);
//! run_parallel(&mut b, 1_000, 16, 3);
//! for (x, y) in a.iter().zip(&b) {
//!     assert_eq!(x.ticks, y.ticks);
//! }
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

/// A self-contained simulation partition that can be advanced over a
/// window of cycles independently of every other shard.
pub trait Shard: Send {
    /// Advances the shard over the half-open cycle window `(start, end]`
    /// (i.e. processes every cycle `c` with `start < c <= end`).
    ///
    /// Returns `true` if the shard may still have work to do after `end`.
    /// Once a shard returns `false` it is considered drained and will not
    /// be stepped again for the remainder of the run; implementations must
    /// only return `false` when no future epoch could produce more work.
    fn run_epoch(&mut self, start: u64, end: u64) -> bool;
}

/// Epochs a worker advances a claimed shard before requeueing it for
/// possible stealing. Large enough to amortise the claim-queue lock, small
/// enough that a straggler shard still spreads over idle workers.
pub const STEAL_QUANTUM_EPOCHS: u64 = 8;

// Process-wide executor telemetry. fqms-sim sits below the core crate, so
// these accumulate here and `fqms::telemetry` re-exports them.
static WORKERS_PEAK: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static FREE_RUN_SPANS: AtomicU64 = AtomicU64::new(0);
static BARRIER_WAITS: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide executor activity (all runs since process
/// start). `workers_peak` is the largest worker count any run used;
/// the other fields are totals across runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Largest number of worker threads any parallel run used.
    pub workers_peak: u64,
    /// Claims of a shard last advanced by a *different* worker.
    pub steals: u64,
    /// Epoch windows executed without any cross-shard synchronisation.
    pub free_run_spans: u64,
    /// Barrier waits performed by the lockstep reference executor.
    pub barrier_waits: u64,
}

/// Reads the cumulative process-wide executor counters.
pub fn exec_counters() -> ExecCounters {
    ExecCounters {
        workers_peak: WORKERS_PEAK.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        free_run_spans: FREE_RUN_SPANS.load(Ordering::Relaxed),
        barrier_waits: BARRIER_WAITS.load(Ordering::Relaxed),
    }
}

fn note_run(workers: usize, steals: u64, spans: u64, barrier_waits: u64) {
    WORKERS_PEAK.fetch_max(workers as u64, Ordering::Relaxed);
    STEALS.fetch_add(steals, Ordering::Relaxed);
    FREE_RUN_SPANS.fetch_add(spans, Ordering::Relaxed);
    BARRIER_WAITS.fetch_add(barrier_waits, Ordering::Relaxed);
}

/// Per-worker activity of one free-running or lockstep run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Shard claims this worker made (first claims included).
    pub claims: u64,
    /// Claims of a shard last advanced by a different worker.
    pub steals: u64,
    /// Epoch windows this worker executed outside any barrier.
    pub free_run_spans: u64,
    /// Barrier waits (always zero for the free-running executor).
    pub barrier_waits: u64,
}

/// Outcome of one [`run_free`] invocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FreeRunReport {
    /// The cycle the run reached: the maximum over shards of the final
    /// epoch-window end (equals [`run_serial`]'s return on the same
    /// inputs).
    pub reached: u64,
    /// Worker threads actually used (≤ requested, ≤ shard count).
    pub workers: usize,
    /// Per-worker activity, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
}

impl FreeRunReport {
    /// Total steals across workers.
    pub fn steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }

    /// Total epoch windows executed across workers.
    pub fn free_run_spans(&self) -> u64 {
        self.per_worker.iter().map(|w| w.free_run_spans).sum()
    }
}

/// Locks a mutex, ignoring poisoning: the executor's own invariants never
/// depend on state guarded across a panic (panics are caught around shard
/// code only and re-raised after the scope joins).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn check_args(horizon: u64, epoch_cycles: u64) {
    assert!(epoch_cycles > 0, "epoch length must be positive");
    assert!(horizon > 0, "horizon must be positive");
}

/// Advances every shard to `horizon` cycles (or until all shards drain) on
/// the calling thread, one epoch at a time.
///
/// Returns the cycle the run actually reached (a multiple of
/// `epoch_cycles`, capped at `horizon`).
///
/// # Panics
///
/// Panics if `horizon` or `epoch_cycles` is zero.
pub fn run_serial<S: Shard>(shards: &mut [S], horizon: u64, epoch_cycles: u64) -> u64 {
    check_args(horizon, epoch_cycles);
    let mut done = vec![false; shards.len()];
    let mut remaining = shards.len();
    let mut start = 0u64;
    while start < horizon && remaining > 0 {
        let end = horizon.min(start + epoch_cycles);
        for (shard, d) in shards.iter_mut().zip(done.iter_mut()) {
            if !*d && !shard.run_epoch(start, end) {
                *d = true;
                remaining -= 1;
            }
        }
        start = end;
    }
    start
}

/// One claimable unit of work: a shard plus its private clock and the id
/// of the worker that last advanced it (for steal accounting).
struct Task<'a, S> {
    shard: &'a mut S,
    start: u64,
    owner: Option<usize>,
}

/// Advances every shard to `horizon` cycles (or until it drains) with no
/// cross-shard synchronisation: workers claim shards from a shared queue,
/// advance them up to `quantum_epochs` epoch windows, and requeue
/// unfinished ones, so shards load-balance across workers (claiming a
/// shard last advanced by a different worker counts as a steal).
///
/// Every shard is stepped through the exact window sequence
/// `(0, e], (e, 2e], …` capped at `horizon` that [`run_serial`] uses and
/// is never stepped by two workers at once, so final shard states are
/// bit-identical to the serial run regardless of claim order. A
/// `quantum_epochs` of zero means "run to completion without requeueing"
/// (no stealing after the first claim).
///
/// # Panics
///
/// Panics if `horizon`, `epoch_cycles`, or `num_threads` is zero. A panic
/// inside a shard's `run_epoch` is caught, all workers wind down promptly
/// (no deadlock), and the first panic payload is re-raised on the calling
/// thread after every worker has stopped.
pub fn run_free<S: Shard>(
    shards: &mut [S],
    horizon: u64,
    epoch_cycles: u64,
    num_threads: usize,
    quantum_epochs: u64,
) -> FreeRunReport {
    check_args(horizon, epoch_cycles);
    assert!(num_threads > 0, "need at least one worker thread");
    if shards.is_empty() {
        return FreeRunReport {
            reached: horizon,
            workers: 0,
            per_worker: Vec::new(),
        };
    }
    let workers = num_threads.min(shards.len());
    let num_shards = shards.len();

    let queue: Mutex<VecDeque<Task<'_, S>>> = Mutex::new(
        shards
            .iter_mut()
            .map(|shard| Task {
                shard,
                start: 0,
                owner: None,
            })
            .collect(),
    );
    // Tasks not yet finished (drained or at horizon). Termination: a task
    // is requeued *before* this drops, so pending == 0 implies the queue
    // is empty and stays empty — workers spin-yield on an empty queue
    // until then.
    let pending = AtomicUsize::new(num_shards);
    let reached = AtomicU64::new(0);
    let panicked = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    let worker_loop = |me: usize| -> WorkerStats {
        let mut stats = WorkerStats::default();
        'claims: while !panicked.load(Ordering::Acquire) {
            let task = lock(&queue).pop_front();
            let Some(mut task) = task else {
                if pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                std::thread::yield_now();
                continue;
            };
            stats.claims += 1;
            if task.owner.is_some_and(|prev| prev != me) {
                stats.steals += 1;
            }
            task.owner = Some(me);
            let mut drained = false;
            let mut spans = 0u64;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                while task.start < horizon {
                    let end = horizon.min(task.start + epoch_cycles);
                    let alive = task.shard.run_epoch(task.start, end);
                    task.start = end;
                    spans += 1;
                    if !alive {
                        drained = true;
                        break;
                    }
                    if quantum_epochs != 0 && spans >= quantum_epochs {
                        break;
                    }
                }
            }));
            stats.free_run_spans += spans;
            if let Err(payload) = outcome {
                let mut slot = lock(&panic_payload);
                if slot.is_none() {
                    *slot = Some(payload);
                }
                panicked.store(true, Ordering::Release);
                break 'claims;
            }
            if drained || task.start >= horizon {
                reached.fetch_max(task.start, Ordering::AcqRel);
                pending.fetch_sub(1, Ordering::AcqRel);
            } else {
                lock(&queue).push_back(task);
            }
        }
        stats
    };

    let per_worker = if workers == 1 {
        vec![worker_loop(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..workers)
                .map(|me| scope.spawn(move || worker_loop(me)))
                .collect();
            let mut all = vec![worker_loop(0)];
            for h in handles {
                // Worker bodies catch shard panics, so join only fails if
                // the executor itself is broken.
                all.push(h.join().expect("executor worker crashed"));
            }
            all
        })
    };
    if panicked.load(Ordering::Acquire) {
        let payload = lock(&panic_payload)
            .take()
            .expect("panic flag set without payload");
        resume_unwind(payload);
    }
    let steals: u64 = per_worker.iter().map(|w| w.steals).sum();
    let spans: u64 = per_worker.iter().map(|w| w.free_run_spans).sum();
    note_run(workers, steals, spans, 0);
    FreeRunReport {
        reached: reached.load(Ordering::Acquire),
        workers,
        per_worker,
    }
}

/// Advances every shard to `horizon` cycles (or until all shards drain)
/// using `num_threads` free-running worker threads (see [`run_free`]).
///
/// Shards never exchange cycle-level state, so no shard ever needs to wait
/// for another between the sync points the caller retains (result merge,
/// checkpoint cycles, fault-plan horizons); the final shard states are
/// bit-identical to [`run_serial`] on the same inputs.
///
/// Returns the cycle the run actually reached.
///
/// # Panics
///
/// Panics if `horizon`, `epoch_cycles`, or `num_threads` is zero, or if a
/// shard panics (the payload is propagated after all workers stop).
pub fn run_parallel<S: Shard>(
    shards: &mut [S],
    horizon: u64,
    epoch_cycles: u64,
    num_threads: usize,
) -> u64 {
    check_args(horizon, epoch_cycles);
    assert!(num_threads > 0, "need at least one worker thread");
    if shards.is_empty() {
        return horizon;
    }
    if num_threads.min(shards.len()) == 1 {
        // One worker free-runs by definition; skip the queue machinery.
        return run_serial(shards, horizon, epoch_cycles);
    }
    run_free(
        shards,
        horizon,
        epoch_cycles,
        num_threads,
        STEAL_QUANTUM_EPOCHS,
    )
    .reached
}

/// The PR 1 epoch-barrier executor, retained as a lockstep reference:
/// shards are dealt round-robin across workers and every worker
/// synchronises on a barrier twice per epoch, so no shard ever runs more
/// than one epoch ahead of another. Bit-identical to [`run_serial`] and
/// [`run_free`]; kept for differential tests and for measuring barrier
/// overhead (each wait is counted into [`exec_counters`]).
///
/// Returns the cycle the run actually reached.
///
/// # Panics
///
/// Panics if `horizon`, `epoch_cycles`, or `num_threads` is zero, or if a
/// worker thread panics (a shard's own panic is propagated).
pub fn run_lockstep<S: Shard>(
    shards: &mut [S],
    horizon: u64,
    epoch_cycles: u64,
    num_threads: usize,
) -> u64 {
    check_args(horizon, epoch_cycles);
    assert!(num_threads > 0, "need at least one worker thread");
    if shards.is_empty() {
        return horizon;
    }
    let workers = num_threads.min(shards.len());
    if workers == 1 {
        return run_serial(shards, horizon, epoch_cycles);
    }

    // Round-robin deal so consecutive (often similarly loaded) shards
    // spread across workers. Each worker gets disjoint `&mut` access.
    let mut lanes: Vec<Vec<&mut S>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, shard) in shards.iter_mut().enumerate() {
        lanes[i % workers].push(shard);
    }

    let barrier = Barrier::new(workers);
    let remaining = AtomicUsize::new(lanes.iter().map(Vec::len).sum());
    let waits = AtomicU64::new(0);
    let reached = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                let barrier = &barrier;
                let remaining = &remaining;
                let waits = &waits;
                scope.spawn(move || {
                    let mut lane = lane;
                    let mut done = vec![false; lane.len()];
                    let mut start = 0u64;
                    while start < horizon {
                        let end = horizon.min(start + epoch_cycles);
                        for (shard, d) in lane.iter_mut().zip(done.iter_mut()) {
                            if !*d && !shard.run_epoch(start, end) {
                                *d = true;
                                remaining.fetch_sub(1, Ordering::AcqRel);
                            }
                        }
                        // Two barriers per epoch: all decrements for this
                        // epoch happen before the first, and the next
                        // epoch's decrements happen only after the second,
                        // so between them every worker reads the same
                        // count and makes the same continue/stop decision.
                        barrier.wait();
                        let all_drained = remaining.load(Ordering::Acquire) == 0;
                        barrier.wait();
                        waits.fetch_add(2, Ordering::Relaxed);
                        start = end;
                        if all_drained {
                            break;
                        }
                    }
                    start
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .fold(0u64, u64::max)
    });
    note_run(workers, 0, 0, waits.load(Ordering::Relaxed));
    reached
}

/// Runs `f` once per shard across `num_threads` workers and returns the
/// results in shard order. Used for parallel phases whose unit of work is
/// a whole shard rather than an epoch window (checkpoint capture, resume
/// of an interrupted epoch): each shard is claimed by exactly one worker,
/// so results are deterministic whatever the claim interleaving.
///
/// # Panics
///
/// Panics if a call to `f` panics: remaining workers stop claiming and the
/// first payload is re-raised on the calling thread after all workers
/// stop.
pub fn for_each_shard<S, R, F>(shards: &mut [S], num_threads: usize, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    let n = shards.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = num_threads.max(1).min(n);
    if workers == 1 {
        return shards
            .iter_mut()
            .enumerate()
            .map(|(i, s)| f(i, s))
            .collect();
    }
    let cells: Vec<Mutex<Option<(usize, &mut S)>>> = shards
        .iter_mut()
        .enumerate()
        .map(|(i, s)| Mutex::new(Some((i, s))))
        .collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    let worker_loop = || {
        while !panicked.load(Ordering::Acquire) {
            let slot = next.fetch_add(1, Ordering::AcqRel);
            if slot >= n {
                break;
            }
            let Some((idx, shard)) = lock(&cells[slot]).take() else {
                continue;
            };
            match catch_unwind(AssertUnwindSafe(|| f(idx, shard))) {
                Ok(r) => *lock(&results[idx]) = Some(r),
                Err(payload) => {
                    let mut p = lock(&panic_payload);
                    if p.is_none() {
                        *p = Some(payload);
                    }
                    panicked.store(true, Ordering::Release);
                    break;
                }
            }
        }
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers).map(|_| scope.spawn(worker_loop)).collect();
        worker_loop();
        for h in handles {
            h.join().expect("for_each_shard worker crashed");
        }
    });
    if panicked.load(Ordering::Acquire) {
        let payload = lock(&panic_payload)
            .take()
            .expect("panic flag set without payload");
        resume_unwind(payload);
    }
    note_run(workers, 0, 0, 0);
    results
        .into_iter()
        .map(|r| {
            lock(&r)
                .take()
                .expect("worker finished without storing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shard that appends the epoch windows it saw and drains after a
    /// fixed number of cycles.
    struct Recorder {
        windows: Vec<(u64, u64)>,
        budget: u64,
        seen: u64,
    }

    impl Recorder {
        fn new(budget: u64) -> Self {
            Recorder {
                windows: Vec::new(),
                budget,
                seen: 0,
            }
        }
    }

    impl Shard for Recorder {
        fn run_epoch(&mut self, start: u64, end: u64) -> bool {
            self.windows.push((start, end));
            self.seen += end - start;
            self.seen < self.budget
        }
    }

    #[test]
    fn serial_and_parallel_states_match() {
        for threads in 1..=6 {
            let mut serial: Vec<Recorder> = (0..7).map(|i| Recorder::new(50 + i * 37)).collect();
            let mut parallel: Vec<Recorder> = (0..7).map(|i| Recorder::new(50 + i * 37)).collect();
            let a = run_serial(&mut serial, 10_000, 64);
            let b = run_parallel(&mut parallel, 10_000, 64, threads);
            assert_eq!(a, b, "{threads} threads: reached different cycles");
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.windows, p.windows, "{threads} threads");
                assert_eq!(s.seen, p.seen, "{threads} threads");
            }
        }
    }

    #[test]
    fn lockstep_matches_serial() {
        for threads in 1..=6 {
            let mut serial: Vec<Recorder> = (0..7).map(|i| Recorder::new(50 + i * 37)).collect();
            let mut lockstep: Vec<Recorder> = (0..7).map(|i| Recorder::new(50 + i * 37)).collect();
            let a = run_serial(&mut serial, 10_000, 64);
            let b = run_lockstep(&mut lockstep, 10_000, 64, threads);
            assert_eq!(a, b, "{threads} threads: reached different cycles");
            for (s, p) in serial.iter().zip(&lockstep) {
                assert_eq!(s.windows, p.windows, "{threads} threads");
            }
        }
    }

    #[test]
    fn free_run_matches_serial_across_quanta() {
        for quantum in [0u64, 1, 2, 7, 64] {
            let mut serial: Vec<Recorder> = (0..5).map(|i| Recorder::new(30 + i * 91)).collect();
            let mut free: Vec<Recorder> = (0..5).map(|i| Recorder::new(30 + i * 91)).collect();
            let a = run_serial(&mut serial, 4_000, 32);
            let rep = run_free(&mut free, 4_000, 32, 3, quantum);
            assert_eq!(a, rep.reached, "quantum {quantum}: reached");
            for (s, p) in serial.iter().zip(&free) {
                assert_eq!(s.windows, p.windows, "quantum {quantum}");
            }
        }
    }

    #[test]
    fn early_exit_when_all_shards_drain() {
        let mut shards: Vec<Recorder> = (0..4).map(|_| Recorder::new(100)).collect();
        let reached = run_parallel(&mut shards, 1_000_000, 32, 2);
        // Budget 100 at epoch 32 drains during the 4th epoch.
        assert_eq!(reached, 128);
        for s in &shards {
            assert_eq!(s.windows.len(), 4);
        }
    }

    #[test]
    fn horizon_is_respected() {
        let mut shards = vec![Recorder::new(u64::MAX)];
        let reached = run_serial(&mut shards, 100, 64);
        assert_eq!(reached, 100);
        assert_eq!(shards[0].windows, vec![(0, 64), (64, 100)]);
    }

    #[test]
    fn drained_shards_are_not_restepped() {
        let mut shards = vec![Recorder::new(10), Recorder::new(1_000)];
        run_parallel(&mut shards, 2_000, 100, 2);
        assert_eq!(shards[0].windows.len(), 1, "drained shard kept stepping");
        assert_eq!(shards[1].windows.len(), 10);
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let mut shards = vec![Recorder::new(100)];
        let reached = run_parallel(&mut shards, 1_000, 64, 8);
        assert_eq!(reached, 128);
    }

    #[test]
    fn empty_shard_list_is_a_noop() {
        let mut shards: Vec<Recorder> = Vec::new();
        assert_eq!(run_parallel(&mut shards, 100, 10, 4), 100);
    }

    #[test]
    fn free_run_report_accounts_for_every_window() {
        let mut shards: Vec<Recorder> = (0..6).map(|i| Recorder::new(40 + i * 53)).collect();
        let rep = run_free(&mut shards, 2_000, 16, 3, 2);
        let total_windows: u64 = shards.iter().map(|s| s.windows.len() as u64).sum();
        assert_eq!(rep.free_run_spans(), total_windows);
        assert_eq!(rep.workers, 3);
        assert_eq!(rep.per_worker.len(), 3);
        let claims: u64 = rep.per_worker.iter().map(|w| w.claims).sum();
        assert!(claims >= 6, "each shard is claimed at least once");
    }

    #[test]
    fn for_each_shard_preserves_order() {
        for threads in [1usize, 2, 5] {
            let mut shards: Vec<u64> = (0..9).collect();
            let out = for_each_shard(&mut shards, threads, |i, s| {
                *s += 100;
                (i as u64, *s)
            });
            for (i, (idx, val)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u64);
                assert_eq!(*val, i as u64 + 100);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_epoch_rejected() {
        let mut shards = vec![Recorder::new(10)];
        run_serial(&mut shards, 100, 0);
    }
}
