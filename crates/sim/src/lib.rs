//! Simulation kernel for the Fair Queuing Memory Systems (FQMS) simulator.
//!
//! This crate provides the foundational, dependency-free building blocks that
//! every other crate in the workspace uses:
//!
//! * [`clock`] — cycle types and the two-domain clock model (CPU clock vs.
//!   DRAM command clock) used throughout the simulator,
//! * [`rng`] — a small, fully deterministic pseudo-random number generator so
//!   that every simulation is exactly reproducible from its seed,
//! * [`bitset`] — a dense fixed-capacity bit set with ascending-order and
//!   union iteration, backing the scheduler hot loop's occupancy and
//!   open-bank masks,
//! * [`stats`] — counters, running statistics, histograms, and the summary
//!   math (harmonic mean, variance) the paper's evaluation metrics need,
//! * [`parallel`] — the free-running work-stealing shard executor that runs
//!   independent simulation partitions (e.g. DDR2 channels) across worker
//!   threads with no cross-shard synchronisation between merge points, with
//!   results bit-identical to a serial run (a lockstep epoch-barrier
//!   reference executor is retained for differential testing),
//! * [`fault`] — seeded fault plans compiled into deterministic episode
//!   timelines, so adversarial conditions (NACK storms, bank stalls,
//!   refresh pressure, request drops) are as reproducible as the happy
//!   path,
//! * [`snapshot`] — the versioned binary checkpoint codec (magic, format
//!   version, config fingerprint, per-section CRC) and the [`Snapshot`]
//!   trait every stateful layer implements for deterministic
//!   checkpoint/restore.
//!
//! # Example
//!
//! ```
//! use fqms_sim::clock::{ClockDomains, DramCycle};
//! use fqms_sim::stats::Summary;
//!
//! let clocks = ClockDomains::new(5); // 5 CPU cycles per DRAM cycle
//! assert_eq!(clocks.dram_to_cpu(DramCycle::new(10)).as_u64(), 50);
//!
//! let s: Summary = [1.0_f64, 2.0, 4.0].iter().copied().collect();
//! assert!((s.mean() - 7.0 / 3.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod clock;
pub mod fault;
pub mod parallel;
pub mod rng;
pub mod snapshot;
pub mod stats;

pub use bitset::DenseBitSet;
pub use clock::{ClockDomains, CpuCycle, DramCycle};
pub use fault::{Episode, FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultWindow};
pub use parallel::{
    exec_counters, for_each_shard, run_free, run_lockstep, run_parallel, run_serial, ExecCounters,
    FreeRunReport, Shard, WorkerStats,
};
pub use rng::SimRng;
pub use snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
pub use stats::{Counter, Histogram, Ratio, Summary};
