//! Cycle newtypes and the two-domain clock model.
//!
//! The FQMS simulator advances in **DRAM command-clock cycles** (the clock in
//! which the DDR2 timing constraints of the paper's Table 6 are expressed)
//! while processor cores are clocked `cpu_ratio` times faster. Keeping the
//! two domains as distinct newtypes ([`DramCycle`], [`CpuCycle`]) prevents an
//! entire class of unit-confusion bugs: a DRAM-cycle quantity can never be
//! silently compared with or added to a CPU-cycle quantity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

macro_rules! cycle_newtype {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// The zero cycle (simulation start).
            pub const ZERO: $name = $name(0);
            /// The maximum representable cycle; used as an "infinitely far in
            /// the future" sentinel by schedulers.
            pub const MAX: $name = $name(u64::MAX);

            /// Creates a cycle value from a raw count.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// Returns the raw cycle count.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the cycle count as an `f64` (for statistics).
            #[inline]
            pub fn as_f64(self) -> f64 {
                self.0 as f64
            }

            /// Saturating subtraction: returns `self - rhs`, clamped at zero.
            #[inline]
            pub fn saturating_sub(self, rhs: Self) -> Self {
                $name(self.0.saturating_sub(rhs.0))
            }

            /// Checked addition of a raw cycle count, saturating at [`Self::MAX`].
            #[inline]
            pub fn saturating_add(self, rhs: u64) -> Self {
                $name(self.0.saturating_add(rhs))
            }

            /// Advances this cycle by one.
            #[inline]
            pub fn tick(&mut self) {
                self.0 += 1;
            }

            /// Returns the maximum of two cycle values.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                if self.0 >= other.0 { self } else { other }
            }

            /// Returns the minimum of two cycle values.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                if self.0 <= other.0 { self } else { other }
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            #[inline]
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub for $name {
            type Output = u64;
            /// Distance in cycles between two time points.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `rhs > self`.
            #[inline]
            fn sub(self, rhs: $name) -> u64 {
                debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
                self.0 - rhs.0
            }
        }

        impl Sum<u64> for $name {
            fn sum<I: Iterator<Item = u64>>(iter: I) -> Self {
                $name(iter.sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

cycle_newtype!(
    /// A point in time (or a duration) measured in DRAM command-clock cycles.
    ///
    /// All DDR2 timing constraints (Table 6 of the paper) are expressed in
    /// this domain.
    DramCycle,
    "dram-cycles"
);

cycle_newtype!(
    /// A point in time (or a duration) measured in processor clock cycles.
    ///
    /// IPC and memory latency results are reported in this domain, matching
    /// the paper's presentation.
    CpuCycle,
    "cpu-cycles"
);

/// Accumulates the earliest *strictly future* event cycle among a set of
/// candidate thresholds — the building block of event-driven fast-forward.
///
/// Every readiness predicate in the DDR2 model is a monotone step function
/// of time (`now >= threshold`), so the earliest cycle at which *any*
/// decision can change is the minimum of the thresholds that still lie in
/// the future. Thresholds at or before `now` are already in force and
/// cannot flip again, so they are ignored.
///
/// # Example
///
/// ```
/// use fqms_sim::clock::{DramCycle, NextEvent};
///
/// let mut ev = NextEvent::after(DramCycle::new(100));
/// ev.consider(DramCycle::new(90));   // past: ignored
/// ev.consider(DramCycle::new(100));  // present: ignored
/// ev.consider(DramCycle::new(130));
/// ev.consider(DramCycle::new(115));
/// assert_eq!(ev.earliest(), DramCycle::new(115));
/// assert_eq!(NextEvent::after(DramCycle::ZERO).earliest(), DramCycle::MAX);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NextEvent {
    now: DramCycle,
    earliest: DramCycle,
}

impl NextEvent {
    /// Starts a search for the earliest event strictly after `now`.
    #[inline]
    pub fn after(now: DramCycle) -> Self {
        NextEvent {
            now,
            earliest: DramCycle::MAX,
        }
    }

    /// Offers a candidate threshold; kept only if it is strictly in the
    /// future and earlier than everything seen so far.
    #[inline]
    pub fn consider(&mut self, candidate: DramCycle) {
        if candidate > self.now && candidate < self.earliest {
            self.earliest = candidate;
        }
    }

    /// The earliest future event cycle seen, or [`DramCycle::MAX`] if every
    /// candidate was in the past (no future event known).
    #[inline]
    pub fn earliest(&self) -> DramCycle {
        self.earliest
    }
}

/// The relationship between the CPU clock and the DRAM command clock.
///
/// The simulator's master loop advances one DRAM cycle at a time and steps
/// each core `cpu_ratio` times per DRAM cycle.
///
/// # Example
///
/// ```
/// use fqms_sim::clock::{ClockDomains, CpuCycle, DramCycle};
///
/// let clocks = ClockDomains::new(5);
/// assert_eq!(clocks.dram_to_cpu(DramCycle::new(7)), CpuCycle::new(35));
/// assert_eq!(clocks.cpu_ratio(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockDomains {
    cpu_ratio: u64,
}

impl ClockDomains {
    /// Creates a clock-domain descriptor with `cpu_ratio` CPU cycles per DRAM
    /// command-clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_ratio` is zero.
    pub fn new(cpu_ratio: u64) -> Self {
        assert!(cpu_ratio > 0, "cpu_ratio must be at least 1");
        ClockDomains { cpu_ratio }
    }

    /// Number of CPU cycles per DRAM cycle.
    #[inline]
    pub fn cpu_ratio(&self) -> u64 {
        self.cpu_ratio
    }

    /// Converts a DRAM-domain time/duration to the CPU domain.
    #[inline]
    pub fn dram_to_cpu(&self, t: DramCycle) -> CpuCycle {
        CpuCycle::new(t.as_u64() * self.cpu_ratio)
    }

    /// Converts a CPU-domain time/duration to the DRAM domain, rounding down.
    #[inline]
    pub fn cpu_to_dram(&self, t: CpuCycle) -> DramCycle {
        DramCycle::new(t.as_u64() / self.cpu_ratio)
    }
}

impl Default for ClockDomains {
    /// The paper-calibrated default: 5 CPU cycles per DRAM command-clock
    /// cycle (a ~2 GHz core over a 400 MHz DDR2-800 command clock).
    fn default() -> Self {
        ClockDomains::new(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_tick() {
        let mut c = DramCycle::ZERO;
        assert_eq!(c.as_u64(), 0);
        c.tick();
        c.tick();
        assert_eq!(c, DramCycle::new(2));
    }

    #[test]
    fn add_and_sub() {
        let a = CpuCycle::new(10);
        let b = a + 5;
        assert_eq!(b.as_u64(), 15);
        assert_eq!(b - a, 5);
    }

    #[test]
    fn saturating_ops() {
        let a = DramCycle::new(3);
        assert_eq!(a.saturating_sub(DramCycle::new(10)), DramCycle::ZERO);
        assert_eq!(DramCycle::MAX.saturating_add(1), DramCycle::MAX);
    }

    #[test]
    fn min_max() {
        let a = DramCycle::new(3);
        let b = DramCycle::new(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic]
    fn zero_ratio_panics() {
        let _ = ClockDomains::new(0);
    }

    #[test]
    fn domain_conversions() {
        let clocks = ClockDomains::new(4);
        assert_eq!(clocks.dram_to_cpu(DramCycle::new(3)), CpuCycle::new(12));
        assert_eq!(clocks.cpu_to_dram(CpuCycle::new(13)), DramCycle::new(3));
    }

    #[test]
    fn default_ratio_is_five() {
        assert_eq!(ClockDomains::default().cpu_ratio(), 5);
    }

    #[test]
    fn next_event_picks_earliest_future_cycle() {
        let mut ev = NextEvent::after(DramCycle::new(50));
        assert_eq!(ev.earliest(), DramCycle::MAX);
        ev.consider(DramCycle::new(49)); // past
        ev.consider(DramCycle::new(50)); // present: already in force
        assert_eq!(ev.earliest(), DramCycle::MAX);
        ev.consider(DramCycle::new(80));
        ev.consider(DramCycle::new(51));
        ev.consider(DramCycle::new(60));
        assert_eq!(ev.earliest(), DramCycle::new(51));
        ev.consider(DramCycle::MAX);
        assert_eq!(ev.earliest(), DramCycle::new(51));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(DramCycle::new(7).to_string(), "7 dram-cycles");
        assert_eq!(CpuCycle::new(7).to_string(), "7 cpu-cycles");
    }
}
