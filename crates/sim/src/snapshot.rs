//! Versioned binary snapshots for deterministic checkpoint/restore.
//!
//! Long sweeps (multi-billion-cycle figure runs) need crash recovery that
//! is O(checkpoint interval), not O(run). This module is the in-tree
//! codec every stateful layer serializes through — no serde, no external
//! crates, bit-exact round-trips (floats travel as IEEE-754 bits).
//!
//! # Format
//!
//! ```text
//! magic "FQMS" | version u16 | config fingerprint u64 | section*
//! section := name_len u16 | name bytes | payload_len u32 | payload | crc32 u32
//! ```
//!
//! Sections are named, ordered, and individually CRC-protected, so a
//! truncated or bit-flipped snapshot is rejected with a typed
//! [`SnapshotError`] *naming the failing section* — never a panic, never
//! a silent wrong restore. The config fingerprint binds a snapshot to the
//! exact configuration that produced it: restoring into a system built
//! with a different scheduler, geometry, seed, or workload mix fails with
//! [`SnapshotError::ConfigMismatch`] instead of resuming nonsense.
//!
//! # Safety against hostile bytes
//!
//! Every length field is validated against the remaining buffer *before*
//! any allocation or slicing, so corrupt lengths cannot trigger OOM or
//! out-of-bounds reads. [`SectionReader::seq_len`] additionally bounds
//! element counts by the bytes left in the section.
//!
//! # Example
//!
//! ```
//! use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new(0xfeed);
//! w.section("clock", |s| s.put_u64(42));
//! let bytes = w.into_bytes();
//!
//! let mut r = SnapshotReader::new(&bytes, 0xfeed)?;
//! let cycle = r.section("clock", |s| s.get_u64())?;
//! r.finish()?;
//! assert_eq!(cycle, 42);
//! # Ok::<(), fqms_sim::snapshot::SnapshotError>(())
//! ```

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"FQMS";

/// Current snapshot format version. Bump on any layout change; restore
/// rejects other versions with [`SnapshotError::UnsupportedVersion`].
pub const VERSION: u16 = 1;

/// Why a snapshot could not be restored. Every variant that concerns a
/// section carries that section's name, so tooling can report *where*
/// corruption struck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot does not start with the `FQMS` magic bytes.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the snapshot header.
        found: u16,
        /// Version this build reads and writes.
        expected: u16,
    },
    /// The snapshot was taken under a different configuration (scheduler,
    /// geometry, timing, seed, workloads, ...).
    ConfigMismatch {
        /// Fingerprint the restoring configuration computes.
        expected: u64,
        /// Fingerprint recorded in the snapshot header.
        found: u64,
    },
    /// The snapshot ends before the named section is complete.
    Truncated {
        /// Section (or `"header"`) that ran out of bytes.
        section: &'static str,
    },
    /// The named section's payload fails its CRC — bytes were flipped.
    CorruptSection {
        /// Section whose checksum failed.
        section: &'static str,
    },
    /// The reader expected one section but found another (or a corrupted
    /// section name).
    WrongSection {
        /// Section the restoring code asked for.
        expected: &'static str,
        /// Section name actually present at this position.
        found: String,
    },
    /// The named section decoded but its contents are not a valid state
    /// (impossible enum tag, cursor past its timeline, ...).
    Malformed {
        /// Section whose contents failed validation.
        section: &'static str,
        /// What was wrong.
        what: String,
    },
    /// Extra bytes follow the final section.
    TrailingData,
    /// A component in the restore path cannot be snapshotted (e.g. a
    /// custom trace source without state hooks).
    Unsupported {
        /// The component lacking snapshot support.
        what: String,
    },
    /// An I/O error while loading or storing a snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an FQMS snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (expected {expected})"
                )
            }
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot taken under a different configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated in section `{section}`")
            }
            SnapshotError::CorruptSection { section } => {
                write!(f, "section `{section}` failed its checksum")
            }
            SnapshotError::WrongSection { expected, found } => {
                write!(f, "expected section `{expected}`, found `{found}`")
            }
            SnapshotError::Malformed { section, what } => {
                write!(f, "section `{section}` is malformed: {what}")
            }
            SnapshotError::TrailingData => write!(f, "trailing bytes after the final section"),
            SnapshotError::Unsupported { what } => {
                write!(f, "{what} does not support snapshotting")
            }
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A stateful component that can serialize its mutable state into a
/// section payload and later restore it bit-exactly.
///
/// Implementations write *only* run-time mutable state; configuration
/// (geometry, timing, policies) is validated out-of-band through the
/// snapshot's config fingerprint and rebuilt by the owner. Derived caches
/// that can be recomputed (e.g. scheduler proposal memos) should be
/// invalidated on restore rather than serialized.
pub trait Snapshot {
    /// Appends this component's state to a section payload.
    fn save(&self, w: &mut SectionWriter);
    /// Restores state previously written by [`Snapshot::save`] into an
    /// identically-configured component.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] naming the failing section when the
    /// payload is truncated or decodes to an invalid state.
    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError>;
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, table-driven)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the per-section checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Config fingerprints
// ---------------------------------------------------------------------------

/// Incremental FNV-1a hasher for configuration fingerprints.
///
/// A fingerprint digests everything that determines a simulation's
/// future: scheduler, shares, geometry, timing, seed, workload names,
/// channel count, ... Two configurations with equal fingerprints produce
/// interchangeable snapshots.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    hash: u64,
}

impl Fingerprint {
    /// Starts a fingerprint from a domain label (e.g. `"fqms-system"`).
    pub fn new(domain: &str) -> Self {
        let mut f = Fingerprint {
            hash: 0xCBF2_9CE4_8422_2325,
        };
        f.push_bytes(domain.as_bytes());
        f
    }

    /// Folds raw bytes into the fingerprint.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Folds a `u64` into the fingerprint.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// Folds an `f64` into the fingerprint, bit-exactly.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.push_u64(v.to_bits())
    }

    /// Folds a string (length-delimited, so `"ab","c"` ≠ `"a","bc"`).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes())
    }

    /// The 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a snapshot: header then named, CRC-protected sections.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot bound to a configuration `fingerprint`.
    pub fn new(fingerprint: u64) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&fingerprint.to_le_bytes());
        SnapshotWriter { buf }
    }

    /// Appends one named section whose payload is produced by `f`.
    ///
    /// # Panics
    ///
    /// Panics if `name` exceeds `u16::MAX` bytes or the payload exceeds
    /// `u32::MAX` bytes (no realistic snapshot approaches either).
    pub fn section(&mut self, name: &str, f: impl FnOnce(&mut SectionWriter)) {
        let name_len = u16::try_from(name.len()).expect("section name fits u16");
        let mut sw = SectionWriter { buf: Vec::new() };
        f(&mut sw);
        let payload = sw.buf;
        let payload_len = u32::try_from(payload.len()).expect("section payload fits u32");
        self.buf.extend_from_slice(&name_len.to_le_bytes());
        self.buf.extend_from_slice(name.as_bytes());
        self.buf.extend_from_slice(&payload_len.to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    }

    /// Finishes the snapshot and returns its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Appends primitive values to one section's payload.
#[derive(Debug)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (portable across platforms).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` bit-exactly (IEEE-754 bits, little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes `Some(v)`/`None` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Writes a sequence length prefix (pair with per-element writes).
    pub fn put_seq_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Writes length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_seq_len(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Validates and decodes a snapshot: header check, then sections in the
/// order they were written.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Opens a snapshot, validating magic, version, and the configuration
    /// fingerprint.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`],
    /// [`SnapshotError::ConfigMismatch`], or
    /// [`SnapshotError::Truncated`]`{section: "header"}`.
    pub fn new(bytes: &'a [u8], expected_fingerprint: u64) -> Result<Self, SnapshotError> {
        if bytes.len() < 4 + 2 + 8 {
            // Too short to even hold a header: bad magic if the prefix
            // mismatches, truncated otherwise.
            if bytes.len() >= 4 && bytes[..4] != MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated { section: "header" });
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                expected: VERSION,
            });
        }
        let found = u64::from_le_bytes(bytes[6..14].try_into().expect("8 header bytes"));
        if found != expected_fingerprint {
            return Err(SnapshotError::ConfigMismatch {
                expected: expected_fingerprint,
                found,
            });
        }
        Ok(SnapshotReader {
            buf: bytes,
            pos: 14,
        })
    }

    fn take(&mut self, n: usize, section: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotError::Truncated { section });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes the next section, which must be named `name`, handing its
    /// CRC-verified payload to `f`. `f` must consume the payload exactly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::WrongSection`] on a name mismatch,
    /// [`SnapshotError::CorruptSection`] on a CRC failure,
    /// [`SnapshotError::Truncated`]/[`SnapshotError::Malformed`] from
    /// decoding, each naming `name`.
    pub fn section<T>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&mut SectionReader<'a>) -> Result<T, SnapshotError>,
    ) -> Result<T, SnapshotError> {
        let name_len =
            u16::from_le_bytes(self.take(2, name)?.try_into().expect("2 bytes")) as usize;
        let found_name = self.take(name_len, name)?;
        if found_name != name.as_bytes() {
            return Err(SnapshotError::WrongSection {
                expected: name,
                found: String::from_utf8_lossy(found_name).into_owned(),
            });
        }
        let payload_len =
            u32::from_le_bytes(self.take(4, name)?.try_into().expect("4 bytes")) as usize;
        let payload = self.take(payload_len, name)?;
        let crc_stored = u32::from_le_bytes(self.take(4, name)?.try_into().expect("4 bytes"));
        if crc32(payload) != crc_stored {
            return Err(SnapshotError::CorruptSection { section: name });
        }
        let mut sr = SectionReader {
            section: name,
            buf: payload,
            pos: 0,
        };
        let out = f(&mut sr)?;
        if sr.pos != sr.buf.len() {
            return Err(SnapshotError::Malformed {
                section: name,
                what: format!("{} unread payload bytes", sr.buf.len() - sr.pos),
            });
        }
        Ok(out)
    }

    /// Asserts the snapshot has been fully consumed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TrailingData`] if bytes remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::TrailingData);
        }
        Ok(())
    }
}

/// Reads primitive values from one CRC-verified section payload. Every
/// accessor is bounds-checked and reports the owning section on failure.
#[derive(Debug)]
pub struct SectionReader<'a> {
    section: &'static str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// The section this reader decodes (for error construction in
    /// [`Snapshot::restore`] implementations).
    pub fn section_name(&self) -> &'static str {
        self.section
    }

    /// Builds a [`SnapshotError::Malformed`] naming this section.
    pub fn malformed(&self, what: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed {
            section: self.section,
            what: what.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotError::Truncated {
                section: self.section,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `usize` written by [`SectionWriter::put_usize`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] if the value overflows this
    /// platform's `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.malformed(format!("usize value {v} overflows")))
    }

    /// Reads an `f64` bit-exactly.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.malformed(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads an `Option<u64>` written by [`SectionWriter::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            b => Err(self.malformed(format!("invalid option tag {b}"))),
        }
    }

    /// Reads a sequence length, bounded by the bytes remaining in the
    /// section (every element occupies at least one byte), so corrupt
    /// lengths cannot drive huge allocations.
    pub fn seq_len(&mut self) -> Result<usize, SnapshotError> {
        let len = self.get_u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if len > remaining {
            return Err(self.malformed(format!(
                "sequence length {len} exceeds {remaining} remaining bytes"
            )));
        }
        Ok(len as usize)
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.seq_len()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapshotError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| self.malformed("invalid UTF-8 string"))
    }
}

// ---------------------------------------------------------------------------
// Atomic snapshot files
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the content lands in a temporary
/// file in the same directory which is then renamed over the target, so a
/// process killed mid-write can never leave a partial file at `path` —
/// readers see the old content or the new content, nothing in between.
///
/// # Errors
///
/// Propagates I/O errors; a failed write removes its temporary file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic target has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// Loads a snapshot file written by [`save_to_file`].
///
/// # Errors
///
/// [`SnapshotError::Io`] when the file cannot be read.
pub fn load_from_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    std::fs::read(path).map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
}

/// Atomically stores snapshot `bytes` at `path` (see [`write_atomic`]).
///
/// # Errors
///
/// [`SnapshotError::Io`] when the write fails.
pub fn save_to_file(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    write_atomic(path, bytes).map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new(7);
        w.section("alpha", |s| {
            s.put_u64(123);
            s.put_f64(0.25);
            s.put_bool(true);
            s.put_str("hello");
        });
        w.section("beta", |s| {
            s.put_seq_len(3);
            for i in 0..3u64 {
                s.put_u64(i * i);
            }
            s.put_opt_u64(None);
            s.put_opt_u64(Some(9));
        });
        w.into_bytes()
    }

    #[test]
    fn round_trip() {
        let bytes = sample();
        let mut r = SnapshotReader::new(&bytes, 7).unwrap();
        r.section("alpha", |s| {
            assert_eq!(s.get_u64()?, 123);
            assert_eq!(s.get_f64()?, 0.25);
            assert!(s.get_bool()?);
            assert_eq!(s.get_str()?, "hello");
            Ok(())
        })
        .unwrap();
        r.section("beta", |s| {
            let n = s.seq_len()?;
            assert_eq!(n, 3);
            for i in 0..3u64 {
                assert_eq!(s.get_u64()?, i * i);
            }
            assert_eq!(s.get_opt_u64()?, None);
            assert_eq!(s.get_opt_u64()?, Some(9));
            Ok(())
        })
        .unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn header_checks() {
        let bytes = sample();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            SnapshotReader::new(&bad, 7).unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            SnapshotReader::new(&bad, 7).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 99, .. }
        ));
        assert!(matches!(
            SnapshotReader::new(&bytes, 8).unwrap_err(),
            SnapshotError::ConfigMismatch {
                expected: 8,
                found: 7
            }
        ));
        assert_eq!(
            SnapshotReader::new(&bytes[..3], 7).unwrap_err(),
            SnapshotError::Truncated { section: "header" }
        );
    }

    #[test]
    fn crc_catches_payload_flips() {
        let bytes = sample();
        // Flip one bit in the first section's payload (past the header
        // and section name).
        let mut bad = bytes.clone();
        bad[14 + 2 + 5 + 4] ^= 0x40;
        let mut r = SnapshotReader::new(&bad, 7).unwrap();
        assert_eq!(
            r.section("alpha", |s| s.get_u64()).unwrap_err(),
            SnapshotError::CorruptSection { section: "alpha" }
        );
    }

    #[test]
    fn wrong_section_is_named() {
        let bytes = sample();
        let mut r = SnapshotReader::new(&bytes, 7).unwrap();
        let err = r.section("beta", |s| s.get_u64()).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::WrongSection {
                expected: "beta",
                found: "alpha".into()
            }
        );
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let r = SnapshotReader::new(&bytes[..cut], 7);
            let outcome = r.and_then(|mut r| {
                r.section("alpha", |s| {
                    s.get_u64()?;
                    s.get_f64()?;
                    s.get_bool()?;
                    s.get_str()?;
                    Ok(())
                })?;
                r.section("beta", |s| {
                    let n = s.seq_len()?;
                    for _ in 0..n {
                        s.get_u64()?;
                    }
                    s.get_opt_u64()?;
                    s.get_opt_u64()?;
                    Ok(())
                })?;
                r.finish()
            });
            assert!(outcome.is_err(), "cut at {cut} was not rejected");
        }
    }

    #[test]
    fn unread_payload_bytes_are_malformed() {
        let bytes = sample();
        let mut r = SnapshotReader::new(&bytes, 7).unwrap();
        let err = r.section("alpha", |s| s.get_u64()).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Malformed {
                section: "alpha",
                ..
            }
        ));
    }

    #[test]
    fn trailing_data_is_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        let mut r = SnapshotReader::new(&bytes, 7).unwrap();
        r.section("alpha", |s| {
            s.get_u64()?;
            s.get_f64()?;
            s.get_bool()?;
            s.get_str()?;
            Ok(())
        })
        .unwrap();
        r.section("beta", |s| {
            let n = s.seq_len()?;
            for _ in 0..n {
                s.get_u64()?;
            }
            s.get_opt_u64()?;
            s.get_opt_u64()?;
            Ok(())
        })
        .unwrap();
        assert_eq!(r.finish().unwrap_err(), SnapshotError::TrailingData);
    }

    #[test]
    fn corrupt_sequence_length_cannot_allocate() {
        let mut w = SnapshotWriter::new(1);
        w.section("seq", |s| {
            s.put_seq_len(usize::MAX);
        });
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes, 1).unwrap();
        let err = r.section("seq", |s| s.seq_len()).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Malformed { section: "seq", .. }
        ));
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        let mut a = Fingerprint::new("t");
        a.push_str("ab").push_str("c");
        let mut b = Fingerprint::new("t");
        b.push_str("a").push_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprint::new("t");
        c.push_str("ab").push_str("c");
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn crc32_known_value() {
        // CRC-32/IEEE of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn atomic_write_replaces_or_preserves() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fqms-snap-atomic-{}.bin", std::process::id()));
        std::fs::write(&path, b"old").unwrap();
        write_atomic(&path, b"new contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        // A stale temp file from a killed writer does not break the next
        // atomic write.
        let stale = dir.join(format!(
            ".fqms-snap-atomic-{}.bin.tmp-{}",
            std::process::id(),
            std::process::id()
        ));
        std::fs::write(&stale, b"partial").unwrap();
        write_atomic(&path, b"after crash").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"after crash");
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_file(&stale);
    }

    #[test]
    fn save_and_load_file_round_trip() {
        let path = std::env::temp_dir().join(format!("fqms-snap-file-{}.bin", std::process::id()));
        let bytes = sample();
        save_to_file(&path, &bytes).unwrap();
        assert_eq!(load_from_file(&path).unwrap(), bytes);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            load_from_file(&path).unwrap_err(),
            SnapshotError::Io(_)
        ));
    }
}
