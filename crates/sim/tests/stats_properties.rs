//! Property tests for the statistics primitives: the online algorithms
//! must agree with naive reference computations, and the ordering/summary
//! invariants must hold for arbitrary inputs.

use fqms_sim::stats::{harmonic_mean, Histogram, Summary};
use proptest::prelude::*;

proptest! {
    /// Welford's online mean/variance matches the two-pass reference.
    #[test]
    fn summary_matches_naive_reference(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: Summary = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let scale = mean.abs().max(1.0);
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
        let vscale = var.abs().max(1.0);
        prop_assert!((s.population_variance() - var).abs() / vscale < 1e-6);
        prop_assert_eq!(s.count(), xs.len() as u64);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }

    /// The harmonic mean never exceeds the arithmetic mean (AM-HM
    /// inequality) and lies within the sample range.
    #[test]
    fn harmonic_mean_bounds(xs in prop::collection::vec(0.01f64..1e4, 1..50)) {
        let hm = harmonic_mean(&xs);
        let am = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!(hm <= am * (1.0 + 1e-12), "hm {hm} > am {am}");
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(hm >= min * (1.0 - 1e-12));
        prop_assert!(hm <= max * (1.0 + 1e-12));
    }

    /// Histogram totals and mean agree with the raw samples, and
    /// percentiles are monotone in p.
    #[test]
    fn histogram_consistency(xs in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut h = Histogram::new(64, 64);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.sum(), xs.iter().sum::<u64>());
        prop_assert_eq!(h.max(), xs.iter().copied().max().unwrap());
        let mut prev = 0;
        for k in 0..=10 {
            let p = h.percentile(k as f64 / 10.0);
            prop_assert!(p >= prev, "percentile not monotone");
            prev = p;
        }
        // The p100 bucket edge bounds the true max.
        prop_assert!(h.percentile(1.0) >= h.max().min(64 * 64));
    }

    /// Bounded RNG draws are unbiased enough: over many draws of a small
    /// bound, every value appears with roughly equal frequency.
    #[test]
    fn rng_bounded_draws_are_roughly_uniform(seed in 0u64..1000, bound in 2u64..12) {
        use fqms_sim::rng::SimRng;
        let mut rng = SimRng::new(seed);
        let n = 6_000u64;
        let mut counts = vec![0u64; bound as usize];
        for _ in 0..n {
            counts[rng.next_below(bound) as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for (v, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) > expect * 0.7 && (c as f64) < expect * 1.3,
                "value {v} drawn {c} times, expected ~{expect}"
            );
        }
    }
}
