//! Property-style tests for the statistics primitives: the online
//! algorithms must agree with naive reference computations, and the
//! ordering/summary invariants must hold across many random inputs.
//!
//! Random cases are generated with the in-tree deterministic
//! [`fqms_sim::rng::SimRng`] under fixed seeds so the suite is hermetic
//! (no external `proptest` dependency) and fully reproducible.

use fqms_sim::rng::SimRng;
use fqms_sim::stats::{harmonic_mean, Histogram, Summary};

fn random_f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

/// Welford's online mean/variance matches the two-pass reference.
#[test]
fn summary_matches_naive_reference() {
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x5747_0000 + case);
        let n = 1 + rng.next_below(200) as usize;
        let xs: Vec<f64> = (0..n).map(|_| random_f64_in(&mut rng, -1e6, 1e6)).collect();
        let s: Summary = xs.iter().copied().collect();
        let nf = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / nf;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / nf;
        let scale = mean.abs().max(1.0);
        assert!((s.mean() - mean).abs() / scale < 1e-9, "case {case}");
        let vscale = var.abs().max(1.0);
        assert!(
            (s.population_variance() - var).abs() / vscale < 1e-6,
            "case {case}"
        );
        assert_eq!(s.count(), xs.len() as u64);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), min, "case {case}");
        assert_eq!(s.max(), max, "case {case}");
    }
}

/// The harmonic mean never exceeds the arithmetic mean (AM-HM inequality)
/// and lies within the sample range.
#[test]
fn harmonic_mean_bounds() {
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x4A4A_0000 + case);
        let n = 1 + rng.next_below(50) as usize;
        let xs: Vec<f64> = (0..n).map(|_| random_f64_in(&mut rng, 0.01, 1e4)).collect();
        let hm = harmonic_mean(&xs);
        let am = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(hm <= am * (1.0 + 1e-12), "case {case}: hm {hm} > am {am}");
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(hm >= min * (1.0 - 1e-12), "case {case}");
        assert!(hm <= max * (1.0 + 1e-12), "case {case}");
    }
}

/// Histogram totals and mean agree with the raw samples, and percentiles
/// are monotone in p.
#[test]
fn histogram_consistency() {
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x4157_0000 + case);
        let n = 1 + rng.next_below(300) as usize;
        let xs: Vec<u64> = (0..n).map(|_| rng.next_below(10_000)).collect();
        let mut h = Histogram::new(64, 64);
        for &x in &xs {
            h.record(x);
        }
        assert_eq!(h.count(), xs.len() as u64, "case {case}");
        assert_eq!(h.sum(), xs.iter().sum::<u64>(), "case {case}");
        assert_eq!(h.max(), xs.iter().copied().max().unwrap(), "case {case}");
        let mut prev = 0;
        for k in 0..=10 {
            let p = h.percentile(k as f64 / 10.0);
            assert!(p >= prev, "case {case}: percentile not monotone");
            prev = p;
        }
        // The p100 bucket edge bounds the true max.
        assert!(h.percentile(1.0) >= h.max().min(64 * 64), "case {case}");
    }
}

/// Bounded RNG draws are unbiased enough: over many draws of a small
/// bound, every value appears with roughly equal frequency.
#[test]
fn rng_bounded_draws_are_roughly_uniform() {
    for seed in 0..40u64 {
        for bound in 2..12u64 {
            let mut rng = SimRng::new(seed);
            let n = 6_000u64;
            let mut counts = vec![0u64; bound as usize];
            for _ in 0..n {
                counts[rng.next_below(bound) as usize] += 1;
            }
            let expect = n as f64 / bound as f64;
            for (v, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64) > expect * 0.7 && (c as f64) < expect * 1.3,
                    "seed {seed} bound {bound}: value {v} drawn {c} times, expected ~{expect}"
                );
            }
        }
    }
}
