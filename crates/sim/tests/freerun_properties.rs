//! Edge-case properties of the free-running work-stealing executor,
//! checked on the in-tree [`CaseRunner`] with shrinking: random shard
//! populations, horizons, epoch lengths, worker counts, and steal quanta
//! must always reproduce the serial window sequence exactly; a panicking
//! shard must propagate its payload without deadlocking the other
//! workers; and a horizon that is not an epoch multiple must be hit
//! exactly by a short final window.

use fqms_sim::parallel::{run_free, run_serial, Shard};
use fqms_sim::rng::{CaseRunner, SimRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A shard that appends the epoch windows it saw and drains after a
/// fixed number of cycles (the integration-test twin of the executor's
/// internal test recorder).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Recorder {
    windows: Vec<(u64, u64)>,
    budget: u64,
    seen: u64,
}

impl Recorder {
    fn new(budget: u64) -> Self {
        Recorder {
            windows: Vec::new(),
            budget,
            seen: 0,
        }
    }
}

impl Shard for Recorder {
    fn run_epoch(&mut self, start: u64, end: u64) -> bool {
        self.windows.push((start, end));
        self.seen += end - start;
        self.seen < self.budget
    }
}

#[derive(Debug, Clone)]
struct Case {
    budgets: Vec<u64>,
    horizon: u64,
    epoch: u64,
    threads: usize,
    quantum: u64,
}

/// Standard shrink moves for an executor case: fewer shards, smaller
/// budgets, shorter horizon, unit epoch, one thread, zero quantum.
fn shrink(c: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    if c.budgets.len() > 1 {
        let mut d = c.clone();
        d.budgets.truncate(c.budgets.len() / 2);
        out.push(d);
    }
    if c.budgets.iter().any(|&b| b > 1) {
        let mut d = c.clone();
        for b in &mut d.budgets {
            *b = (*b / 2).max(1);
        }
        out.push(d);
    }
    if c.horizon > 1 {
        let mut d = c.clone();
        d.horizon = (c.horizon / 2).max(1);
        out.push(d);
    }
    if c.epoch > 1 {
        let mut d = c.clone();
        d.epoch = (c.epoch / 2).max(1);
        out.push(d);
    }
    if c.threads > 1 {
        let mut d = c.clone();
        d.threads = c.threads / 2;
        out.push(d);
    }
    if c.quantum > 0 {
        let mut d = c.clone();
        d.quantum = c.quantum / 2;
        out.push(d);
    }
    out
}

fn check_matches_serial(c: &Case) -> Result<(), String> {
    let mut serial: Vec<Recorder> = c.budgets.iter().map(|&b| Recorder::new(b)).collect();
    let mut free: Vec<Recorder> = c.budgets.iter().map(|&b| Recorder::new(b)).collect();
    let reached_serial = run_serial(&mut serial, c.horizon, c.epoch);
    let rep = run_free(&mut free, c.horizon, c.epoch, c.threads, c.quantum);
    if reached_serial != rep.reached {
        return Err(format!(
            "reached diverged: serial {reached_serial}, free-run {}",
            rep.reached
        ));
    }
    let expected_workers = c.threads.min(c.budgets.len());
    if rep.workers != expected_workers {
        return Err(format!(
            "used {} workers, expected {expected_workers}",
            rep.workers
        ));
    }
    let total_windows: u64 = free.iter().map(|s| s.windows.len() as u64).sum();
    if rep.free_run_spans() != total_windows {
        return Err(format!(
            "report counts {} spans, shards saw {total_windows} windows",
            rep.free_run_spans()
        ));
    }
    for (i, (s, p)) in serial.iter().zip(&free).enumerate() {
        if s != p {
            return Err(format!(
                "shard {i} diverged: serial saw {:?} (drain {} of budget {}), \
                 free-run saw {:?} (drain {} of budget {})",
                s.windows, s.seen, s.budget, p.windows, p.seen, p.budget
            ));
        }
    }
    Ok(())
}

#[test]
fn free_run_reproduces_serial_windows_exactly() {
    CaseRunner::new("free-run-vs-serial-oracle").run(
        |rng: &mut SimRng| {
            let n = 1 + rng.next_below(12) as usize;
            Case {
                budgets: (0..n).map(|_| 1 + rng.next_below(5_000)).collect(),
                horizon: 1 + rng.next_below(8_000),
                epoch: 1 + rng.next_below(257),
                threads: 1 + rng.next_below(8) as usize,
                quantum: rng.next_below(17),
            }
        },
        shrink,
        check_matches_serial,
    );
}

#[test]
fn one_shard_under_many_threads_uses_one_worker() {
    // Degenerate parallelism: a single shard must be claimed by exactly
    // one worker (no steals, no window interleaving) no matter how many
    // threads are requested.
    CaseRunner::new("one-shard-many-threads").run(
        |rng: &mut SimRng| Case {
            budgets: vec![1 + rng.next_below(3_000)],
            horizon: 1 + rng.next_below(4_000),
            epoch: 1 + rng.next_below(129),
            threads: 2 + rng.next_below(15) as usize,
            quantum: rng.next_below(9),
        },
        shrink,
        |c| {
            check_matches_serial(c)?;
            let mut shards = vec![Recorder::new(c.budgets[0])];
            let rep = run_free(&mut shards, c.horizon, c.epoch, c.threads, c.quantum);
            if rep.steals() != 0 {
                return Err(format!("{} steals on a single shard", rep.steals()));
            }
            Ok(())
        },
    );
}

#[test]
fn shards_draining_at_different_epochs_stay_bit_identical() {
    // Staggered drains: budgets spread over orders of magnitude, so some
    // shards finish in the first window while others run to the horizon.
    // Drained shards must never be re-stepped (covered by the window
    // comparison: an extra window would show up in `windows`).
    CaseRunner::new("staggered-drain").run(
        |rng: &mut SimRng| {
            let n = 2 + rng.next_below(10) as usize;
            Case {
                budgets: (0..n)
                    .map(|i| 1 + rng.next_below(10u64.pow(1 + (i % 4) as u32)))
                    .collect(),
                horizon: 512 + rng.next_below(8_000),
                epoch: 1 + rng.next_below(65),
                threads: 2 + rng.next_below(6) as usize,
                quantum: rng.next_below(5),
            }
        },
        shrink,
        check_matches_serial,
    );
}

#[test]
fn horizon_early_exit_is_exact() {
    // Never-draining shards must stop exactly at the horizon, with a
    // short final window when the horizon is not an epoch multiple.
    CaseRunner::new("horizon-early-exit").run(
        |rng: &mut SimRng| Case {
            budgets: (0..1 + rng.next_below(6) as usize)
                .map(|_| u64::MAX)
                .collect(),
            horizon: 1 + rng.next_below(4_096),
            epoch: 1 + rng.next_below(300),
            threads: 1 + rng.next_below(6) as usize,
            quantum: rng.next_below(9),
        },
        shrink,
        |c| {
            check_matches_serial(c)?;
            let mut shards: Vec<Recorder> = c.budgets.iter().map(|&b| Recorder::new(b)).collect();
            let rep = run_free(&mut shards, c.horizon, c.epoch, c.threads, c.quantum);
            if rep.reached != c.horizon {
                return Err(format!(
                    "reached {} instead of horizon {}",
                    rep.reached, c.horizon
                ));
            }
            for (i, s) in shards.iter().enumerate() {
                match s.windows.last() {
                    Some(&(_, end)) if end == c.horizon => {}
                    other => {
                        return Err(format!(
                            "shard {i} final window {other:?} does not end at the horizon"
                        ))
                    }
                }
            }
            Ok(())
        },
    );
}

/// A shard that panics once its private clock passes `fuse`.
#[derive(Debug)]
struct Fused {
    fuse: u64,
    seen: u64,
}

impl Shard for Fused {
    fn run_epoch(&mut self, _start: u64, end: u64) -> bool {
        self.seen = end;
        assert!(self.seen < self.fuse, "shard fuse blew at cycle {end}");
        true
    }
}

#[test]
fn panicking_shard_propagates_without_deadlock() {
    // One shard panics mid-run (possibly mid-steal); the executor must
    // re-raise that payload on the calling thread after all workers wind
    // down — a swallowed panic or a deadlock both fail this test (the
    // latter via the harness timeout).
    CaseRunner::new("panicking-shard").cases(12).run(
        |rng: &mut SimRng| {
            let n = 1 + rng.next_below(8) as usize;
            Case {
                budgets: (0..n).map(|_| u64::MAX).collect(),
                horizon: 256 + rng.next_below(4_096),
                epoch: 1 + rng.next_below(65),
                threads: 1 + rng.next_below(8) as usize,
                quantum: rng.next_below(5),
            }
        },
        shrink,
        |c| {
            let mut shards: Vec<Fused> = c
                .budgets
                .iter()
                .enumerate()
                .map(|(i, _)| Fused {
                    // Shard 0 blows partway through; the rest never do.
                    fuse: if i == 0 { c.horizon / 2 + 1 } else { u64::MAX },
                    seen: 0,
                })
                .collect();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_free(&mut shards, c.horizon, c.epoch, c.threads, c.quantum);
            }));
            match outcome {
                Ok(_) => Err("shard panic was swallowed".to_string()),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_default();
                    if msg.contains("shard fuse blew") {
                        Ok(())
                    } else {
                        Err(format!("wrong panic payload propagated: {msg:?}"))
                    }
                }
            }
        },
    );
}
